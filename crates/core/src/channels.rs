//! The channel fabric and NS-App address routing.
//!
//! A [`ChannelFabric`] owns the system's memory channels in one of two
//! flavors: direct-attached DDR3 sub-channels (the Baseline-family
//! schemes) or BOB channels behind serial links (normal channels of the
//! D-ORAM schemes; the secure channel itself is `secure_channel`). The
//! [`NsRouter`] implements the paper's interleaved data allocation: an
//! NS-App's lines round-robin over the channels its scheme allows it to
//! use.

use doram_bob::{BobChannel, BobChannelConfig, LinkConfig};
use doram_dram::{
    Completion, EnergyBreakdown, EnergyParams, MemOp, MemRequest, RequestClass, ShareArbiter,
    SubChannel, SubChannelConfig,
};
use doram_sim::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use doram_sim::{AppId, MemCycle, RequestId};

/// Per-app base offset inside a channel's local address space; keeps apps
/// in disjoint row ranges like separate OS allocations would.
pub const APP_REGION_BYTES: u64 = 1 << 33;

/// Base address of the ORAM split region on normal channels (D-ORAM+k).
pub const SPLIT_REGION_BASE: u64 = 1 << 41;

/// One memory channel, either direct-attached or behind a BOB link.
#[derive(Debug)]
pub enum Channel {
    /// Direct-attached: the on-chip MC drives DRAM without a link.
    Direct(Box<SubChannel>),
    /// BOB: serial link + SimpleMC (+ its sub-channels).
    Bob(Box<BobChannel>),
}

impl Channel {
    /// Whether a request can likely be accepted this cycle.
    pub fn can_accept(&self, op: MemOp) -> bool {
        match self {
            Channel::Direct(sc) => match op {
                MemOp::Read => sc.can_accept_read(),
                MemOp::Write => sc.can_accept_write(),
            },
            Channel::Bob(ch) => ch.can_send(),
        }
    }

    /// Attempts to enqueue a request.
    ///
    /// # Errors
    ///
    /// Returns the request on back-pressure.
    pub fn try_enqueue(&mut self, req: MemRequest, now: MemCycle) -> Result<(), MemRequest> {
        match self {
            Channel::Direct(sc) => sc.enqueue(req),
            Channel::Bob(ch) => ch.try_send(req, now),
        }
    }

    /// Advances one memory cycle.
    pub fn tick(&mut self, now: MemCycle, completed: &mut Vec<Completion>) {
        match self {
            Channel::Direct(sc) => sc.tick(now, completed),
            Channel::Bob(ch) => ch.tick(now, completed),
        }
    }

    /// Data-bus utilization over the run (mean across sub-channels).
    pub fn bus_utilization(&self) -> f64 {
        match self {
            Channel::Direct(sc) => sc.stats().bus_utilization(),
            Channel::Bob(ch) => {
                let n = ch.sub_channel_count();
                (0..n).map(|i| ch.sub_channel(i).stats().bus_utilization()).sum::<f64>() / n as f64
            }
        }
    }

    /// Enables device-command tracing on all underlying sub-channels.
    pub fn enable_command_traces(&mut self) {
        match self {
            Channel::Direct(sc) => sc.enable_command_trace(),
            Channel::Bob(ch) => ch.enable_command_traces(),
        }
    }

    /// Takes the recorded traces, one per sub-channel.
    pub fn take_command_traces(&mut self) -> Vec<Vec<doram_dram::CommandRecord>> {
        match self {
            Channel::Direct(sc) => vec![sc.take_command_trace()],
            Channel::Bob(ch) => ch.take_command_traces(),
        }
    }

    /// DRAM energy consumed by this channel's devices.
    pub fn energy(&self, params: &EnergyParams) -> EnergyBreakdown {
        match self {
            Channel::Direct(sc) => EnergyBreakdown::from_stats(sc.stats(), params),
            Channel::Bob(ch) => (0..ch.sub_channel_count())
                .map(|i| EnergyBreakdown::from_stats(ch.sub_channel(i).stats(), params))
                .fold(EnergyBreakdown::default(), |acc, e| acc.add(&e)),
        }
    }

    /// Total column commands (READ + WRITE) issued by this channel; a
    /// monotone counter the liveness watchdog uses as forward progress.
    pub fn column_ops(&self) -> u64 {
        match self {
            Channel::Direct(sc) => sc.stats().reads.get() + sc.stats().writes.get(),
            Channel::Bob(ch) => (0..ch.sub_channel_count())
                .map(|i| {
                    let s = ch.sub_channel(i).stats();
                    s.reads.get() + s.writes.get()
                })
                .sum(),
        }
    }

    /// DRAM row-buffer hit rate (mean across sub-channels).
    pub fn row_hit_rate(&self) -> f64 {
        match self {
            Channel::Direct(sc) => sc.stats().row_hit_rate(),
            Channel::Bob(ch) => {
                let n = ch.sub_channel_count();
                (0..n).map(|i| ch.sub_channel(i).stats().row_hit_rate()).sum::<f64>() / n as f64
            }
        }
    }

    /// Installs a fault plan on the channel's serial link (no-op for
    /// direct-attached channels, which have no link to fault).
    pub fn set_fault_plan(&mut self, plan: &doram_sim::fault::FaultPlan, site: u64) {
        if let Channel::Bob(ch) = self {
            ch.set_fault_plan(plan, site);
        }
    }

    /// Link error/recovery statistics (zeroed for direct channels).
    pub fn link_stats(&self) -> doram_bob::LinkStats {
        match self {
            Channel::Direct(_) => doram_bob::LinkStats::default(),
            Channel::Bob(ch) => ch.link_stats(),
        }
    }

    /// Faults injected on the channel's link (zeroed for direct channels).
    pub fn fault_counts(&self) -> doram_sim::fault::FaultCounts {
        match self {
            Channel::Direct(_) => doram_sim::fault::FaultCounts::default(),
            Channel::Bob(ch) => ch.fault_counts(),
        }
    }

    /// The first unrecovered link fault on this channel, if any.
    pub fn fault(&self) -> Option<&doram_sim::SimError> {
        match self {
            Channel::Direct(_) => None,
            Channel::Bob(ch) => ch.fault(),
        }
    }

    /// One-line summary of the dynamic state, for watchdog diagnostics.
    pub fn debug_state(&self) -> String {
        match self {
            Channel::Direct(sc) => sc.debug_state(),
            Channel::Bob(ch) => ch.debug_state(),
        }
    }

    /// Attaches a trace recorder, registering interference-blame rows
    /// under `ch{idx}.*` names (direct channels expose one `ch{idx}.sub0`
    /// row; BOB channels add their link serializers and SimpleMC buffer).
    pub fn set_obs(&mut self, obs: Option<doram_obs::SharedRecorder>, idx: usize) {
        match self {
            Channel::Direct(sc) => sc.set_obs_named(obs, idx as u64, &format!("ch{idx}.sub0")),
            Channel::Bob(ch) => ch.set_obs(obs, idx),
        }
    }
}

impl Snapshot for Channel {
    fn save_state(&self, w: &mut SnapshotWriter) {
        // The flavor is config-derived; a tag guards against restoring a
        // checkpoint into a differently-configured fabric.
        match self {
            Channel::Direct(sc) => {
                w.put_u8(0);
                sc.save_state(w);
            }
            Channel::Bob(ch) => {
                w.put_u8(1);
                ch.save_state(w);
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.get_u8()?;
        match (tag, self) {
            (0, Channel::Direct(sc)) => sc.load_state(r),
            (1, Channel::Bob(ch)) => ch.load_state(r),
            _ => Err(SnapshotError::new("channel flavor mismatch")),
        }
    }
}

/// The set of normal channels of the system.
#[derive(Debug)]
pub struct ChannelFabric {
    channels: Vec<Channel>,
}

impl ChannelFabric {
    /// Builds `n` direct-attached channels (Baseline family).
    pub fn direct(n: usize, sub_cfg: &SubChannelConfig) -> ChannelFabric {
        ChannelFabric {
            channels: (0..n)
                .map(|_| Channel::Direct(Box::new(SubChannel::new(sub_cfg.clone()))))
                .collect(),
        }
    }

    /// Builds `n` BOB channels with one sub-channel each (the D-ORAM
    /// normal channels; the secure channel is constructed separately).
    pub fn bob(n: usize, link: LinkConfig, sub_cfg: &SubChannelConfig) -> ChannelFabric {
        ChannelFabric {
            channels: (0..n)
                .map(|_| {
                    Channel::Bob(Box::new(BobChannel::new(BobChannelConfig {
                        link,
                        sub_channels: vec![sub_cfg.clone()],
                    })))
                })
                .collect(),
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Whether the fabric has no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Access to channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn channel(&self, i: usize) -> &Channel {
        &self.channels[i]
    }

    /// Mutable access to channel `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn channel_mut(&mut self, i: usize) -> &mut Channel {
        &mut self.channels[i]
    }

    /// Ticks every channel.
    pub fn tick(&mut self, now: MemCycle, completed: &mut Vec<Completion>) {
        for ch in self.channels.iter_mut() {
            ch.tick(now, completed);
        }
    }

    /// Installs a fault plan on every BOB channel's link; channel `i` uses
    /// fault site `base_site + i` so each link draws an independent,
    /// deterministic fault stream.
    pub fn set_fault_plan(&mut self, plan: &doram_sim::fault::FaultPlan, base_site: u64) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.set_fault_plan(plan, base_site + i as u64);
        }
    }

    /// Link error/recovery statistics summed over every channel.
    pub fn link_stats(&self) -> doram_bob::LinkStats {
        let mut total = doram_bob::LinkStats::default();
        for ch in &self.channels {
            total.absorb(&ch.link_stats());
        }
        total
    }

    /// Injected-fault counts summed over every channel's link.
    pub fn fault_counts(&self) -> doram_sim::fault::FaultCounts {
        let mut total = doram_sim::fault::FaultCounts::default();
        for ch in &self.channels {
            total.absorb(&ch.fault_counts());
        }
        total
    }

    /// The first unrecovered link fault across the fabric, if any.
    pub fn fault(&self) -> Option<&doram_sim::SimError> {
        self.channels.iter().find_map(|ch| ch.fault())
    }

    /// Total column commands issued across the fabric (watchdog progress).
    pub fn column_ops(&self) -> u64 {
        self.channels.iter().map(Channel::column_ops).sum()
    }

    /// Attaches a trace recorder to every channel (blame rows `ch{i}.*`).
    pub fn set_obs(&mut self, obs: Option<doram_obs::SharedRecorder>) {
        for (i, ch) in self.channels.iter_mut().enumerate() {
            ch.set_obs(obs.clone(), i);
        }
    }

    /// One-line summary per channel, for watchdog diagnostics.
    pub fn debug_states(&self) -> Vec<String> {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, ch)| format!("ch{i}[{}]", ch.debug_state()))
            .collect()
    }

    /// The sub-channel configuration the paper's Table II implies, with
    /// the given arbiter.
    pub fn paper_subchannel_config(
        timing: doram_dram::DramTiming,
        threshold: f64,
    ) -> SubChannelConfig {
        SubChannelConfig {
            timing,
            arbiter: if threshold >= 1.0 {
                ShareArbiter::disabled()
            } else {
                ShareArbiter::new(threshold, 64)
            },
            ..SubChannelConfig::default()
        }
    }
}

impl Snapshot for ChannelFabric {
    fn save_state(&self, w: &mut SnapshotWriter) {
        let ChannelFabric { channels } = self;
        w.put_usize(channels.len());
        for ch in channels {
            ch.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        if r.get_usize()? != self.channels.len() {
            return Err(SnapshotError::new("channel count mismatch"));
        }
        for ch in self.channels.iter_mut() {
            ch.load_state(r)?;
        }
        Ok(())
    }
}

/// Routes one NS-App's line-interleaved allocation over its allowed
/// channels.
#[derive(Debug, Clone)]
pub struct NsRouter {
    app: AppId,
    allowed: Vec<usize>,
}

impl NsRouter {
    /// Creates a router for `app` over `allowed` channels.
    ///
    /// # Panics
    ///
    /// Panics if `allowed` is empty.
    pub fn new(app: AppId, allowed: Vec<usize>) -> NsRouter {
        assert!(!allowed.is_empty(), "app needs at least one channel");
        NsRouter { app, allowed }
    }

    /// The channels this app may use.
    pub fn allowed(&self) -> &[usize] {
        &self.allowed
    }

    /// Maps an app-local address to `(channel, channel-local address)`.
    pub fn route(&self, addr: u64) -> (usize, u64) {
        let line = addr >> 6;
        let n = self.allowed.len() as u64;
        let ch = self.allowed[(line % n) as usize];
        let local_line = line / n;
        let local = APP_REGION_BYTES * (self.app.index() as u64 + 1) + (local_line << 6);
        (ch, local)
    }

    /// Builds the [`MemRequest`] for an app access.
    pub fn request(
        &self,
        id: RequestId,
        op: MemOp,
        addr: u64,
        now: MemCycle,
    ) -> (usize, MemRequest) {
        let (ch, local) = self.route(addr);
        (
            ch,
            MemRequest {
                id,
                app: self.app,
                op,
                addr: local,
                class: RequestClass::Normal,
                arrival: now,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doram_dram::DramTiming;

    #[test]
    fn router_interleaves_over_allowed() {
        let r = NsRouter::new(AppId(2), vec![1, 2, 3]);
        let chans: Vec<usize> = (0..6).map(|i| r.route(i * 64).0).collect();
        assert_eq!(chans, vec![1, 2, 3, 1, 2, 3]);
    }

    #[test]
    fn router_addresses_are_dense_per_channel() {
        let r = NsRouter::new(AppId(0), vec![0, 1]);
        let (_, a0) = r.route(0);
        let (_, a1) = r.route(128); // next line on channel 0
        assert_eq!(a1 - a0, 64);
    }

    #[test]
    fn apps_get_disjoint_regions() {
        let a = NsRouter::new(AppId(0), vec![0]);
        let b = NsRouter::new(AppId(1), vec![0]);
        let (_, la) = a.route(0);
        let (_, lb) = b.route(0);
        assert_ne!(la, lb);
        assert!(lb - la >= APP_REGION_BYTES);
    }

    #[test]
    fn fabric_direct_and_bob_service_requests() {
        let sub = ChannelFabric::paper_subchannel_config(DramTiming::ddr3_1600(), 0.5);
        for mut fabric in [
            ChannelFabric::direct(2, &sub),
            ChannelFabric::bob(2, LinkConfig::default(), &sub),
        ] {
            assert_eq!(fabric.len(), 2);
            assert!(!fabric.is_empty());
            let req = MemRequest {
                id: RequestId(1),
                app: AppId(0),
                op: MemOp::Read,
                addr: 4096,
                class: RequestClass::Normal,
                arrival: MemCycle(0),
            };
            assert!(fabric.channel(1).can_accept(MemOp::Read));
            fabric.channel_mut(1).try_enqueue(req, MemCycle(0)).unwrap();
            let mut done = Vec::new();
            let mut now = MemCycle(0);
            while done.is_empty() && now.0 < 5000 {
                fabric.tick(now, &mut done);
                now += MemCycle(1);
            }
            assert_eq!(done.len(), 1);
            assert!(fabric.channel(1).bus_utilization() > 0.0);
            let _ = fabric.channel(1).row_hit_rate();
        }
    }

    #[test]
    fn disabled_arbiter_when_threshold_one() {
        let cfg = ChannelFabric::paper_subchannel_config(DramTiming::ddr3_1600(), 1.0);
        // Constructs without panic and runs; behavioural check is in the
        // dram crate's arbiter tests.
        let _ = SubChannel::new(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_allowed_panics() {
        let _ = NsRouter::new(AppId(0), vec![]);
    }
}

//! The full-system simulation driver.
//!
//! Steps the 8-core CMP against the memory backend of the configured
//! scheme at memory-clock granularity (4 CPU cycles per memory cycle, as
//! USIMM does). NS-App cores that finish their trace are restarted with a
//! fresh trace segment so memory pressure stays constant; the reported
//! execution time is the first completion.

use crate::channels::{ChannelFabric, NsRouter, SPLIT_REGION_BASE};
use crate::config::{Scheme, SystemConfig};
use crate::cpu_engine::CpuEngine;
use crate::metrics::{OramSummary, RunReport};
use crate::onchip_oram::{FabricSink, FsmEvent, OramFsm, OramJob};
use crate::secmem_frontend::SecMemFrontend;
use crate::secure_channel::{
    get_split_fetch, put_split_fetch, SecureChannel, SecureChannelConfig, SplitFetch,
};
use doram_cpu::{CoreConfig, MemoryPort, TraceCore};
use doram_dram::{Completion, MemOp, MemRequest, RequestClass};
use doram_obs::{CoreStall, SharedRecorder, StallDump, Subsystem};
use doram_oram::plan::PlanConfig;
use doram_oram::split::SplitConfig;
use doram_oram::tree::TreeGeometry;
use doram_crypto::Cmac;
use doram_sim::snapshot::{
    checkpoint_auth_message, fnv1a64, read_checkpoint, write_atomic, write_checkpoint,
    CheckpointData, Snapshot, SnapshotError, SnapshotErrorKind, SnapshotReader, SnapshotWriter,
};
use doram_sim::stats::{Histogram, RunningMean};
use doram_sim::{AppId, ConfigError, MemCycle, RequestId, RequestIdGen, CPU_CYCLES_PER_MEM_CYCLE};
use doram_trace::TraceGenerator;
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};

/// Error ending a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configured cycle cap was reached before all NS-Apps finished.
    CycleCapExceeded {
        /// The cap that was hit.
        cap: u64,
    },
    /// A sub-channel's command stream violated a JEDEC timing rule
    /// (only reported by [`Simulation::run_with_conformance_check`]).
    JedecViolation {
        /// Which sub-channel (flat index across channels).
        sub_channel: usize,
        /// First violation's description.
        detail: String,
    },
    /// Fault recovery was exhausted: a link retry budget ran out, or the
    /// SD quarantined a sub-channel after persistent integrity failures.
    /// Fail-stop is the correct response to untrusted memory that keeps
    /// tampering — continuing would leak through degraded behaviour.
    IntegrityFailStop {
        /// The latched fault's description.
        detail: String,
    },
    /// A run option was rejected before the simulation started (zero
    /// checkpoint interval, watchdog budget below one DRAM round trip, …).
    Config {
        /// The violated constraint.
        detail: String,
    },
    /// A checkpoint file could not be written, read, or restored.
    Checkpoint {
        /// What went wrong, naming the file where relevant.
        detail: String,
    },
    /// The liveness watchdog fired: no core retired an instruction and no
    /// DRAM column command issued for a whole budget of memory cycles.
    Stalled {
        /// Memory cycle at which the stall was declared.
        at: u64,
        /// The no-progress budget that elapsed.
        budget: u64,
        /// Structured diagnostic dump of every component's dynamic state
        /// (per-core progress, blocked reads, backend summaries, and —
        /// when tracing is on — latest metrics and the event-log tail).
        dump: StallDump,
    },
    /// The run was interrupted (Ctrl-C / SIGTERM or
    /// [`request_shutdown`]) and shut down gracefully.
    Interrupted {
        /// Memory cycle the run had completed up to.
        at: u64,
        /// Final checkpoint written on the way out, when a checkpoint
        /// directory was configured.
        checkpoint: Option<PathBuf>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::CycleCapExceeded { cap } => {
                write!(f, "simulation exceeded the {cap}-memory-cycle cap")
            }
            SimError::JedecViolation { sub_channel, detail } => {
                write!(f, "JEDEC violation on sub-channel {sub_channel}: {detail}")
            }
            SimError::IntegrityFailStop { detail } => {
                write!(f, "fault recovery exhausted (fail-stop): {detail}")
            }
            SimError::Config { detail } => write!(f, "invalid run options: {detail}"),
            SimError::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
            SimError::Stalled { at, budget, dump } => write!(
                f,
                "no forward progress for {budget} memory cycles (stalled at cycle {at})\n{dump}"
            ),
            SimError::Interrupted { at, checkpoint } => match checkpoint {
                Some(p) => write!(
                    f,
                    "interrupted at memory cycle {at}; checkpoint written to {}",
                    p.display()
                ),
                None => write!(f, "interrupted at memory cycle {at} (no checkpoint directory)"),
            },
        }
    }
}

impl std::error::Error for SimError {}

/// Knobs of [`Simulation::run_with`]: periodic checkpointing, the
/// liveness watchdog, and graceful-shutdown handling. The default is the
/// plain [`Simulation::run`] behaviour (everything off).
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Write a checkpoint every `N` memory cycles (requires
    /// [`checkpoint_dir`](RunOptions::checkpoint_dir)).
    pub checkpoint_every: Option<u64>,
    /// Directory receiving `ckpt-<cycle>.dorc` files (and the final
    /// checkpoint on interruption).
    pub checkpoint_dir: Option<PathBuf>,
    /// Declare the run stalled after this many memory cycles without a
    /// retired instruction or a DRAM column command. Must cover at least
    /// one DRAM round trip (tRCD + CL + tBurst + tRP).
    pub watchdog_budget: Option<u64>,
    /// Install SIGINT/SIGTERM handlers that trigger graceful shutdown
    /// (final checkpoint + [`SimError::Interrupted`]).
    pub handle_signals: bool,
    /// Key authenticating checkpoints: every file written carries a CMAC
    /// over its header and payload under this key, and
    /// [`Simulation::resume_with_key`] refuses files whose tag does not
    /// verify. `None` writes unkeyed (legacy, bit-compatible) files.
    pub ckpt_key: Option<u64>,
}

impl RunOptions {
    /// Validates the options against `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Config`] naming the violated constraint.
    pub fn validate(&self, cfg: &SystemConfig) -> Result<(), SimError> {
        if self.checkpoint_every == Some(0) {
            return Err(SimError::Config {
                detail: "checkpoint interval must be at least one memory cycle".into(),
            });
        }
        if self.checkpoint_every.is_some() && self.checkpoint_dir.is_none() {
            return Err(SimError::Config {
                detail: "periodic checkpointing requires a checkpoint directory".into(),
            });
        }
        if let Some(budget) = self.watchdog_budget {
            let t = &cfg.timing;
            // One closed-row read: ACT → tRCD → READ → CL + burst → PRE.
            let round_trip = t.t_rcd + t.cl + t.t_burst + t.t_rp;
            if budget < round_trip {
                return Err(SimError::Config {
                    detail: format!(
                        "watchdog budget {budget} is below one DRAM round trip \
                         ({round_trip} memory cycles)"
                    ),
                });
            }
        }
        Ok(())
    }
}

/// Name of the run-epoch marker file kept next to the checkpoints. It
/// records the highest epoch any run has checkpointed under in that
/// directory, so a resume can reject a checkpoint from an *earlier*
/// epoch — an attacker substituting an old-but-authentic file.
const EPOCH_MARKER: &str = "epoch.mark";

/// Salt mixed into the 64-bit checkpoint key when expanding it to the
/// 128-bit CMAC key (the same seed-expansion idiom as the SD tag key).
const CKPT_KEY_SALT: u64 = 0xC4EC_4B01_C4EC_4B01;

fn ckpt_mac(key: u64) -> Cmac {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&key.to_le_bytes());
    k[8..].copy_from_slice(&(key ^ CKPT_KEY_SALT).to_le_bytes());
    Cmac::new(k)
}

/// Reads the run-epoch marker in `dir` (0 when absent — a directory that
/// never checkpointed, or a checkpoint moved elsewhere deliberately).
fn read_epoch_marker(dir: &Path) -> Result<u64, SimError> {
    let path = dir.join(EPOCH_MARKER);
    match std::fs::read_to_string(&path) {
        Ok(s) => s.trim().parse::<u64>().map_err(|_| SimError::Checkpoint {
            detail: format!("{}: malformed epoch marker", path.display()),
        }),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
        Err(e) => Err(SimError::Checkpoint {
            detail: format!("reading {}: {e}", path.display()),
        }),
    }
}

/// Allocates this run's epoch — one past the largest ever recorded in
/// `dir` — and durably bumps the marker before any checkpoint carries it.
fn allocate_epoch(dir: &Path) -> Result<u64, SimError> {
    let epoch = read_epoch_marker(dir)?
        .checked_add(1)
        .ok_or_else(|| SimError::Checkpoint {
            detail: "run-epoch counter overflow".into(),
        })?;
    let path = dir.join(EPOCH_MARKER);
    write_atomic(&path, format!("{epoch}\n").as_bytes()).map_err(|e| SimError::Checkpoint {
        detail: format!("writing {}: {e}", path.display()),
    })?;
    Ok(epoch)
}

/// Set by the SIGINT/SIGTERM handlers; polled once per memory cycle.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Requests graceful shutdown of the running simulation, exactly as a
/// SIGINT would: the run writes a final checkpoint (when a checkpoint
/// directory is configured) and returns [`SimError::Interrupted`].
/// Embedders and tests call this directly; the CLI installs signal
/// handlers that call it via [`RunOptions::handle_signals`].
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn shutdown_handler(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = shutdown_handler as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Hash binding a checkpoint to the configuration it was taken under;
/// resuming under a different configuration is rejected.
fn config_hash(cfg: &SystemConfig) -> u64 {
    fnv1a64(format!("{cfg:?}").as_bytes())
}

/// Event-log tail length carried in a [`StallDump`].
const STALL_EVENT_TAIL: usize = 16;

/// One core and its bookkeeping.
struct CoreSlot {
    core: TraceCore,
    is_sapp: bool,
    first_finish_cpu: Option<u64>,
    restarts: u64,
}

impl CoreSlot {
    /// Serializes the slot (restart count first: restoring needs it to
    /// rebuild the right trace segment before the core state loads).
    fn save_state(&self, w: &mut SnapshotWriter) {
        let CoreSlot {
            core,
            is_sapp: _,
            first_finish_cpu,
            restarts,
        } = self;
        w.put_u64(*restarts);
        match first_finish_cpu {
            None => w.put_bool(false),
            Some(c) => {
                w.put_bool(true);
                w.put_u64(*c);
            }
        }
        core.save_state(w);
    }

    /// Restores the slot; `core_idx` and `cfg` rebuild the trace iterator
    /// for the checkpointed restart count.
    fn load_state(
        &mut self,
        r: &mut SnapshotReader<'_>,
        cfg: &SystemConfig,
        core_idx: usize,
        sapp_present: bool,
    ) -> Result<(), SnapshotError> {
        self.restarts = r.get_u64()?;
        self.first_finish_cpu = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        let accesses = if self.is_sapp {
            cfg.s_accesses
        } else {
            cfg.ns_accesses
        };
        let bench = if self.is_sapp {
            cfg.benchmark
        } else {
            cfg.ns_benchmark(core_idx - usize::from(sapp_present))
        };
        let stream = trace_stream_id(cfg, core_idx, self.restarts);
        let gen = TraceGenerator::new(bench.spec(), cfg.seed, stream);
        self.core.load_state(r, Box::new(gen.finite(accesses)))
    }
}

/// The scheme-specific memory backend.
#[allow(clippy::large_enum_variant)] // one backend is live per run; no arrays of these
enum Backend {
    /// Pure NS schemes (1NS, 7NS-4ch, 7NS-3ch): direct channels only.
    Plain { fabric: ChannelFabric },
    /// Baseline: direct channels + on-chip Path ORAM controller.
    BaselineOram {
        fabric: ChannelFabric,
        fsm: OramFsm,
        oram_ids: HashSet<RequestId>,
    },
    /// 1S7NS under the secure-memory model.
    SecMem {
        fabric: ChannelFabric,
        frontend: SecMemFrontend,
    },
    /// D-ORAM: BOB normal channels + secure channel with SD.
    DOram {
        normals: ChannelFabric,
        secure: Box<SecureChannel>,
        engine: CpuEngine,
        /// Outstanding split reads on normal channels: id → fetch.
        split_fwd: HashMap<RequestId, SplitFetch>,
        /// Split operations waiting for normal-channel capacity.
        pending_split: VecDeque<(SplitFetch, MemOp)>,
        /// Fetched split blocks waiting for secure-link capacity.
        pending_deliver: VecDeque<SplitFetch>,
    },
}

impl Backend {
    fn flavor_tag(&self) -> u8 {
        match self {
            Backend::Plain { .. } => 0,
            Backend::BaselineOram { .. } => 1,
            Backend::SecMem { .. } => 2,
            Backend::DOram { .. } => 3,
        }
    }

    /// Monotone forward-progress counter: DRAM column commands issued
    /// anywhere in the backend.
    fn column_ops(&self) -> u64 {
        match self {
            Backend::Plain { fabric }
            | Backend::BaselineOram { fabric, .. }
            | Backend::SecMem { fabric, .. } => fabric.column_ops(),
            Backend::DOram {
                normals, secure, ..
            } => {
                let sd: u64 = (0..secure.sub_channel_count())
                    .map(|i| {
                        let s = secure.sub_channel(i).stats();
                        s.reads.get() + s.writes.get()
                    })
                    .sum();
                normals.column_ops() + sd
            }
        }
    }

    /// Per-component state summaries for the watchdog's diagnostic dump.
    fn debug_lines(&self) -> Vec<String> {
        match self {
            Backend::Plain { fabric } => fabric.debug_states(),
            Backend::BaselineOram {
                fabric,
                fsm,
                oram_ids,
            } => {
                let mut lines = vec![format!(
                    "oram-fsm[{}] outstanding={}",
                    fsm.debug_state(),
                    oram_ids.len()
                )];
                lines.extend(fabric.debug_states());
                lines
            }
            Backend::SecMem { fabric, frontend } => {
                let mut lines = vec![format!("secmem[{}]", frontend.debug_state())];
                lines.extend(fabric.debug_states());
                lines
            }
            Backend::DOram {
                normals,
                secure,
                engine,
                split_fwd,
                pending_split,
                pending_deliver,
            } => {
                let mut lines = vec![
                    format!("secure[{}]", secure.debug_state()),
                    format!(
                        "engine[sent={}/{} resp={}] split_fwd={} pending_split={} \
                         pending_deliver={}",
                        engine.stats().real_sent.get(),
                        engine.stats().dummies_sent.get(),
                        engine.stats().responses.get(),
                        split_fwd.len(),
                        pending_split.len(),
                        pending_deliver.len()
                    ),
                ];
                lines.extend(normals.debug_states());
                lines
            }
        }
    }
}

impl Snapshot for Backend {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u8(self.flavor_tag());
        match self {
            Backend::Plain { fabric } => fabric.save_state(w),
            Backend::BaselineOram {
                fabric,
                fsm,
                oram_ids,
            } => {
                fabric.save_state(w);
                fsm.save_state(w);
                let mut ids: Vec<u64> = oram_ids.iter().map(|id| id.0).collect();
                ids.sort_unstable();
                w.put_usize(ids.len());
                for id in ids {
                    w.put_u64(id);
                }
            }
            Backend::SecMem { fabric, frontend } => {
                fabric.save_state(w);
                frontend.save_state(w);
            }
            Backend::DOram {
                normals,
                secure,
                engine,
                split_fwd,
                pending_split,
                pending_deliver,
            } => {
                normals.save_state(w);
                secure.save_state(w);
                engine.save_state(w);
                let mut fwd: Vec<(u64, SplitFetch)> =
                    split_fwd.iter().map(|(id, f)| (id.0, *f)).collect();
                fwd.sort_unstable_by_key(|&(id, _)| id);
                w.put_usize(fwd.len());
                for (id, f) in fwd {
                    w.put_u64(id);
                    put_split_fetch(&f, w);
                }
                w.put_usize(pending_split.len());
                for (f, op) in pending_split {
                    put_split_fetch(f, w);
                    w.put_u8(match op {
                        MemOp::Read => 0,
                        MemOp::Write => 1,
                    });
                }
                w.put_usize(pending_deliver.len());
                for f in pending_deliver {
                    put_split_fetch(f, w);
                }
            }
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let tag = r.get_u8()?;
        if tag != self.flavor_tag() {
            return Err(SnapshotError::new(format!(
                "backend flavor mismatch: checkpoint has {tag}, configuration builds {}",
                self.flavor_tag()
            )));
        }
        match self {
            Backend::Plain { fabric } => fabric.load_state(r),
            Backend::BaselineOram {
                fabric,
                fsm,
                oram_ids,
            } => {
                fabric.load_state(r)?;
                fsm.load_state(r)?;
                oram_ids.clear();
                for _ in 0..r.get_usize()? {
                    oram_ids.insert(RequestId(r.get_u64()?));
                }
                Ok(())
            }
            Backend::SecMem { fabric, frontend } => {
                fabric.load_state(r)?;
                frontend.load_state(r)
            }
            Backend::DOram {
                normals,
                secure,
                engine,
                split_fwd,
                pending_split,
                pending_deliver,
            } => {
                normals.load_state(r)?;
                secure.load_state(r)?;
                engine.load_state(r)?;
                split_fwd.clear();
                for _ in 0..r.get_usize()? {
                    let id = RequestId(r.get_u64()?);
                    split_fwd.insert(id, get_split_fetch(r)?);
                }
                pending_split.clear();
                for _ in 0..r.get_usize()? {
                    let f = get_split_fetch(r)?;
                    let op = match r.get_u8()? {
                        0 => MemOp::Read,
                        1 => MemOp::Write,
                        t => {
                            return Err(SnapshotError::new(format!("bad MemOp tag {t}")));
                        }
                    };
                    pending_split.push_back((f, op));
                }
                pending_deliver.clear();
                for _ in 0..r.get_usize()? {
                    pending_deliver.push_back(get_split_fetch(r)?);
                }
                Ok(())
            }
        }
    }
}

/// Everything the memory side owns (kept separate from the cores so both
/// can be borrowed at once).
struct MemoryState {
    backend: Backend,
    routers: Vec<NsRouter>,
    idgen: RequestIdGen,
    /// Read ids the cores are blocked on → core index.
    owners: HashMap<RequestId, usize>,
    sapp_present: bool,
    // Metrics.
    ns_read_latency: RunningMean,
    ns_write_latency: RunningMean,
    per_app_read_latency: Vec<RunningMean>,
    ns_read_histogram: Histogram,
    /// Read ids completed this cycle, to deliver to cores.
    ready_reads: Vec<(usize, RequestId)>,
    /// Trace recorder for the channel-mux blame rows below; `None` keeps
    /// `tick_memory` silent.
    obs: Option<SharedRecorder>,
    /// Blame row for split operations waiting on normal-channel capacity
    /// (`cpu.mux.split`), registered by `wire_obs`.
    mux_split_res: Option<usize>,
    /// Blame row for fetched split blocks waiting on secure-link capacity
    /// (`cpu.mux.deliver`).
    mux_deliver_res: Option<usize>,
}

impl MemoryState {
    /// NS router index for a core.
    fn ns_index(&self, core_idx: usize) -> usize {
        core_idx - usize::from(self.sapp_present)
    }

}

impl Snapshot for MemoryState {
    fn save_state(&self, w: &mut SnapshotWriter) {
        let MemoryState {
            backend,
            routers: _, // stateless (config-derived routing tables)
            idgen,
            owners,
            sapp_present: _,
            ns_read_latency,
            ns_write_latency,
            per_app_read_latency,
            ns_read_histogram,
            ready_reads,
            obs: _,             // re-wired by the host after restore
            mux_split_res: _,   // ditto
            mux_deliver_res: _, // ditto
        } = self;
        backend.save_state(w);
        idgen.save_state(w);
        let mut own: Vec<(u64, usize)> = owners.iter().map(|(id, c)| (id.0, *c)).collect();
        own.sort_unstable_by_key(|&(id, _)| id);
        w.put_usize(own.len());
        for (id, core) in own {
            w.put_u64(id);
            w.put_usize(core);
        }
        ns_read_latency.save_state(w);
        ns_write_latency.save_state(w);
        w.put_usize(per_app_read_latency.len());
        for m in per_app_read_latency {
            m.save_state(w);
        }
        ns_read_histogram.save_state(w);
        w.put_usize(ready_reads.len());
        for (core, id) in ready_reads {
            w.put_usize(*core);
            w.put_u64(id.0);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.backend.load_state(r)?;
        self.idgen.load_state(r)?;
        self.owners.clear();
        for _ in 0..r.get_usize()? {
            let id = RequestId(r.get_u64()?);
            let core = r.get_usize()?;
            self.owners.insert(id, core);
        }
        self.ns_read_latency.load_state(r)?;
        self.ns_write_latency.load_state(r)?;
        let n = r.get_usize()?;
        if n != self.per_app_read_latency.len() {
            return Err(SnapshotError::new(format!(
                "per-app latency count mismatch: checkpoint has {n}, configuration builds {}",
                self.per_app_read_latency.len()
            )));
        }
        for m in &mut self.per_app_read_latency {
            m.load_state(r)?;
        }
        self.ns_read_histogram.load_state(r)?;
        self.ready_reads.clear();
        for _ in 0..r.get_usize()? {
            let core = r.get_usize()?;
            let id = RequestId(r.get_u64()?);
            self.ready_reads.push((core, id));
        }
        Ok(())
    }
}

/// The port one core uses during its step.
struct CorePort<'a> {
    mem: &'a mut MemoryState,
    core_idx: usize,
    is_sapp: bool,
    now: MemCycle,
    /// Set by [`CorePort::try_sapp`] when an S-App *write* was accepted
    /// (writes return no id, so acceptance travels through this flag).
    sapp_write_ok: bool,
}

impl MemoryPort for CorePort<'_> {
    fn try_read(&mut self, addr: u64) -> Option<RequestId> {
        if self.is_sapp {
            return self.try_sapp(Some(MemOp::Read), addr);
        }
        let ns = self.mem.ns_index(self.core_idx);
        let id = self.mem.idgen.next_id();
        let (ch, req) = self.mem.routers[ns].request(id, MemOp::Read, addr, self.now);
        if try_route_ns(&mut self.mem.backend, ch, req, self.now) {
            self.mem.owners.insert(id, self.core_idx);
            Some(id)
        } else {
            None
        }
    }

    fn try_write(&mut self, addr: u64) -> bool {
        if self.is_sapp {
            return self.try_sapp(None, addr).is_some() || self.sapp_write_ok;
        }
        let ns = self.mem.ns_index(self.core_idx);
        let id = self.mem.idgen.next_id();
        let (ch, req) = self.mem.routers[ns].request(id, MemOp::Write, addr, self.now);
        try_route_ns(&mut self.mem.backend, ch, req, self.now)
    }
}

impl CorePort<'_> {
    /// S-App access through the scheme's protection frontend. For reads,
    /// returns the id the core blocks on; for writes, `Some(dummy)` iff
    /// accepted (via the `sapp_write_ok` flag dance below).
    fn try_sapp(&mut self, read: Option<MemOp>, addr: u64) -> Option<RequestId> {
        self.sapp_write_ok = false;
        let block = addr >> 6;
        let is_read = read.is_some();
        match &mut self.mem.backend {
            Backend::Plain { .. } => unreachable!("no S-App in plain schemes"),
            Backend::BaselineOram { fsm, .. } => {
                if !fsm.can_submit() {
                    return None;
                }
                if is_read {
                    let id = self.mem.idgen.next_id();
                    fsm.submit(OramJob::Real {
                        id: Some(id),
                        op: MemOp::Read,
                        block,
                    });
                    self.mem.owners.insert(id, self.core_idx);
                    Some(id)
                } else {
                    fsm.submit(OramJob::Real {
                        id: None,
                        op: MemOp::Write,
                        block,
                    });
                    self.sapp_write_ok = true;
                    None
                }
            }
            Backend::SecMem { fabric, frontend } => {
                if is_read {
                    let id = self.mem.idgen.next_id();
                    if frontend.try_submit(
                        Some(id),
                        MemOp::Read,
                        addr,
                        self.now,
                        fabric,
                        &mut self.mem.idgen,
                    ) {
                        self.mem.owners.insert(id, self.core_idx);
                        Some(id)
                    } else {
                        None
                    }
                } else {
                    self.sapp_write_ok = frontend.try_submit(
                        None,
                        MemOp::Write,
                        addr,
                        self.now,
                        fabric,
                        &mut self.mem.idgen,
                    );
                    None
                }
            }
            Backend::DOram { engine, .. } => {
                if !engine.can_submit() {
                    return None;
                }
                if is_read {
                    let id = self.mem.idgen.next_id();
                    engine.submit(Some(id), MemOp::Read, block);
                    self.mem.owners.insert(id, self.core_idx);
                    Some(id)
                } else {
                    engine.submit(None, MemOp::Write, block);
                    self.sapp_write_ok = true;
                    None
                }
            }
        }
    }
}

/// Routes an NS request to its channel in any backend.
fn try_route_ns(backend: &mut Backend, ch: usize, req: MemRequest, now: MemCycle) -> bool {
    match backend {
        Backend::Plain { fabric }
        | Backend::BaselineOram { fabric, .. }
        | Backend::SecMem { fabric, .. } => fabric.channel_mut(ch).try_enqueue(req, now).is_ok(),
        Backend::DOram {
            normals, secure, ..
        } => {
            if ch == 0 {
                secure.try_send_ns(req).is_ok()
            } else {
                normals.channel_mut(ch - 1).try_enqueue(req, now).is_ok()
            }
        }
    }
}

/// A configured, runnable simulation.
pub struct Simulation {
    cfg: SystemConfig,
    cores: Vec<CoreSlot>,
    mem: MemoryState,
    /// Memory cycles completed so far (non-zero after a resume).
    cycle: u64,
    /// Trace recorder shared with every instrumented component; `None`
    /// (the default) keeps the whole stack silent. Deliberately not part
    /// of [`SystemConfig`]: tracing is a run option and must not change
    /// the checkpoint configuration hash.
    obs: Option<SharedRecorder>,
}

/// Hands the shared recorder to every instrumented component of the
/// backend: the D-ORAM access path end to end (engine → secure link →
/// SD → sub-channels), every normal channel (links, SimpleMCs,
/// sub-channels — the `ch{i}.*` blame rows), and the channel-mux holding
/// queues of `tick_memory` (`cpu.mux.*`). Safe to call again after a
/// filter change: blame-row registration re-evaluates against the
/// recorder's current subsystem mask.
fn wire_obs(mem: &mut MemoryState, obs: &SharedRecorder) {
    match &mut mem.backend {
        Backend::Plain { fabric }
        | Backend::BaselineOram { fabric, .. }
        | Backend::SecMem { fabric, .. } => fabric.set_obs(Some(obs.clone())),
        Backend::DOram {
            normals,
            secure,
            engine,
            ..
        } => {
            secure.set_obs(Some(obs.clone()));
            engine.set_obs(Some(obs.clone()));
            normals.set_obs(Some(obs.clone()));
        }
    }
    let is_doram = matches!(mem.backend, Backend::DOram { .. });
    let mut rows = (None, None);
    {
        let mut rec = obs.borrow_mut();
        if is_doram && rec.wants(Subsystem::Engine) {
            rows = (
                Some(rec.blame.resource("cpu.mux.split")),
                Some(rec.blame.resource("cpu.mux.deliver")),
            );
        }
    }
    (mem.mux_split_res, mem.mux_deliver_res) = rows;
    mem.obs = Some(obs.clone());
}

impl Simulation {
    /// Builds the system for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(cfg: SystemConfig) -> Result<Simulation, ConfigError> {
        cfg.validate()?;
        let sapp = cfg.scheme.has_sapp();
        let n_ns = cfg.scheme.ns_apps();
        let n_cores = n_ns + usize::from(sapp);

        // Cores and traces.
        let mut cores = Vec::with_capacity(n_cores);
        for core_idx in 0..n_cores {
            let is_sapp = sapp && core_idx == 0;
            let accesses = if is_sapp { cfg.s_accesses } else { cfg.ns_accesses };
            let bench = if is_sapp {
                cfg.benchmark
            } else {
                cfg.ns_benchmark(core_idx - usize::from(sapp))
            };
            let stream = trace_stream_id(&cfg, core_idx, 0);
            let gen = TraceGenerator::new(bench.spec(), cfg.seed, stream);
            cores.push(CoreSlot {
                core: TraceCore::new(CoreConfig::default(), Box::new(gen.finite(accesses))),
                is_sapp,
                first_finish_cpu: None,
                restarts: 0,
            });
        }

        // NS routing tables.
        let routers: Vec<NsRouter> = (0..n_ns)
            .map(|ns| {
                NsRouter::new(
                    AppId(ns + usize::from(sapp)),
                    cfg.allowed_channels(ns),
                )
            })
            .collect();

        // Memory backend.
        let share = match cfg.scheme {
            // Cooperative bandwidth preallocation applies where the ORAM
            // burst co-runs persistently: the Baseline's shared channels.
            // D-ORAM's normal channels only see sparse split-level fetches,
            // which plain FR-FCFS absorbs (slot partitioning would delay
            // every fetch by up to an epoch and stall the SD's read phase).
            Scheme::Baseline => cfg.share_threshold,
            _ => 1.0,
        };
        let mut sub_cfg = ChannelFabric::paper_subchannel_config(cfg.timing, share);
        sub_cfg.page_policy = cfg.page_policy;
        let plan = PlanConfig {
            geometry: TreeGeometry::new(cfg.tree_l_max, cfg.tree_z),
            subtree_levels: cfg.subtree_levels,
            cached_levels: cfg.tree_top_levels,
            split: SplitConfig::none(),
            tree_units: cfg.channels,
        };
        let backend = match cfg.scheme {
            Scheme::SoloNs | Scheme::Ns7on4 | Scheme::Ns7on3 => Backend::Plain {
                fabric: ChannelFabric::direct(cfg.channels, &sub_cfg),
            },
            Scheme::Baseline => Backend::BaselineOram {
                fabric: ChannelFabric::direct(cfg.channels, &sub_cfg),
                fsm: OramFsm::new(plan, cfg.seed ^ 0x0A0A, 4),
                oram_ids: HashSet::new(),
            },
            // The partitioned setting confines the tree to channel #0
            // (tree_units = 1 ⇒ every block lands on unit 0 = channel 0);
            // the NS routers already exclude that channel.
            Scheme::Partition1S => Backend::BaselineOram {
                fabric: ChannelFabric::direct(cfg.channels, &sub_cfg),
                fsm: OramFsm::new(
                    PlanConfig {
                        tree_units: 1,
                        ..plan
                    },
                    cfg.seed ^ 0x0A0A,
                    4,
                ),
                oram_ids: HashSet::new(),
            },
            Scheme::SecureMemory => Backend::SecMem {
                fabric: ChannelFabric::direct(cfg.channels, &sub_cfg),
                frontend: SecMemFrontend::new(cfg.channels, AppId(0), cfg.seed ^ 0x5EC),
            },
            Scheme::DOram { k, .. } => {
                let split = if k == 0 {
                    SplitConfig::none()
                } else {
                    SplitConfig::new(k, cfg.channels - 1)
                };
                let mut secure_sub_cfg = if cfg.secure_share_threshold >= 1.0 {
                    doram_dram::SubChannelConfig {
                        arbiter: doram_dram::ShareArbiter::oram_priority(),
                        ..ChannelFabric::paper_subchannel_config(cfg.timing, 1.0)
                    }
                } else {
                    ChannelFabric::paper_subchannel_config(cfg.timing, cfg.secure_share_threshold)
                };
                secure_sub_cfg.page_policy = cfg.page_policy;
                let secure = SecureChannel::new(SecureChannelConfig {
                    link: cfg.link,
                    sub_channels: vec![secure_sub_cfg; cfg.secure_subchannels],
                    plan: PlanConfig {
                        split,
                        tree_units: cfg.secure_subchannels,
                        ..plan
                    },
                    s_app: AppId(0),
                    seed: cfg.seed ^ 0x0A0A,
                    merge_split_reads: cfg.merge_split_reads,
                    sd_pipeline: cfg.sd_pipeline,
                    fault_plan: cfg.fault_plan.clone(),
                    recovery: cfg.recovery,
                    parity: cfg.parity,
                    scrub_every: cfg.scrub_every,
                    probation_window: cfg.probation_window,
                    probation_successes: cfg.probation_successes,
                });
                let mut normals = ChannelFabric::bob(cfg.channels - 1, cfg.link, &sub_cfg);
                if !cfg.fault_plan.is_zero() {
                    // Link sites: 0 is the secure channel; normal channel
                    // links start at 1.
                    normals.set_fault_plan(&cfg.fault_plan, 1);
                }
                Backend::DOram {
                    normals,
                    secure: Box::new(secure),
                    engine: CpuEngine::new(cfg.dummy_interval_cpu, 4),
                    split_fwd: HashMap::new(),
                    pending_split: VecDeque::new(),
                    pending_deliver: VecDeque::new(),
                }
            }
        };

        let mem = MemoryState {
            backend,
            routers,
            idgen: RequestIdGen::new(),
            owners: HashMap::new(),
            sapp_present: sapp,
            ns_read_latency: RunningMean::new(),
            ns_write_latency: RunningMean::new(),
            per_app_read_latency: vec![RunningMean::new(); n_cores],
            ns_read_histogram: Histogram::new(8, 256),
            ready_reads: Vec::new(),
            obs: None,
            mux_split_res: None,
            mux_deliver_res: None,
        };

        Ok(Simulation {
            cfg,
            cores,
            mem,
            cycle: 0,
            obs: None,
        })
    }

    /// Attaches the cycle-accurate trace recorder, wiring it into every
    /// instrumented component, and returns the shared handle (clone it
    /// before [`run`](Simulation::run) consumes the simulation to export
    /// the trace afterwards). Idempotent: called on a simulation that
    /// already records — e.g. after [`Simulation::resume`] restored a
    /// traced checkpoint — it only updates the subsystem filter and the
    /// metrics sampling interval, so a resumed run continues its trace
    /// seamlessly.
    pub fn enable_tracing(
        &mut self,
        ring_capacity: usize,
        filter: u8,
        metrics_every: u64,
    ) -> SharedRecorder {
        if let Some(obs) = &self.obs.clone() {
            {
                let mut rec = obs.borrow_mut();
                rec.set_filter(filter);
                rec.metrics.set_every(metrics_every);
            }
            // Re-wire: blame-row registration is gated on the subsystem
            // filter at attach time, so a filter change must propagate.
            wire_obs(&mut self.mem, obs);
            return obs.clone();
        }
        let obs = doram_obs::Recorder::shared(ring_capacity, filter, metrics_every);
        wire_obs(&mut self.mem, &obs);
        self.obs = Some(obs.clone());
        obs
    }

    /// Rebuilds the simulation from `cfg` and restores its dynamic state
    /// from the checkpoint at `path`; [`Simulation::run`] (or
    /// [`run_with`](Simulation::run_with)) then continues from the
    /// checkpointed cycle, producing a [`RunReport`] bit-identical to an
    /// uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] if `cfg` is invalid, [`SimError::Checkpoint`]
    /// if the file is unreadable, corrupt, from another format version, or
    /// was taken under a different configuration.
    pub fn resume(cfg: SystemConfig, path: &Path) -> Result<Simulation, SimError> {
        Simulation::resume_with_key(cfg, path, None)
    }

    /// Like [`resume`](Simulation::resume), additionally enforcing the
    /// active-adversary checks: with a key, the checkpoint's CMAC must
    /// verify (`bad_mac` otherwise — tampered file or wrong key), and in
    /// either mode the checkpoint's run epoch must not pre-date the
    /// directory's epoch marker (`rolled_back` — an older-but-authentic
    /// file substituted for the latest one).
    ///
    /// # Errors
    ///
    /// Everything [`resume`](Simulation::resume) returns, plus
    /// [`SimError::Checkpoint`] for authentication and rollback failures.
    pub fn resume_with_key(
        cfg: SystemConfig,
        path: &Path,
        key: Option<u64>,
    ) -> Result<Simulation, SimError> {
        let mut sim = Simulation::new(cfg).map_err(|e| SimError::Config {
            detail: e.to_string(),
        })?;
        let data = read_checkpoint(path).map_err(|e| SimError::Checkpoint {
            detail: format!("[{}] {}: {}", e.kind().label(), path.display(), e.message()),
        })?;
        let typed = |kind: SnapshotErrorKind, msg: String| SimError::Checkpoint {
            detail: format!("[{}] {}: {msg}", kind.label(), path.display()),
        };
        match (key, data.is_authenticated()) {
            (Some(k), _) => {
                let want = ckpt_mac(k).full_tag(&checkpoint_auth_message(&data));
                if data.auth != want {
                    return Err(typed(
                        SnapshotErrorKind::BadMac,
                        "checkpoint authentication failed (tampered file or wrong key)".into(),
                    ));
                }
            }
            (None, true) => {
                return Err(typed(
                    SnapshotErrorKind::BadMac,
                    "checkpoint is authenticated; resuming requires its key".into(),
                ));
            }
            (None, false) => {}
        }
        if let Some(dir) = path.parent() {
            let marker = read_epoch_marker(dir)?;
            if data.epoch < marker {
                return Err(typed(
                    SnapshotErrorKind::RolledBack,
                    format!(
                        "checkpoint epoch {} pre-dates the directory's latest run \
                         epoch {marker} (rollback rejected)",
                        data.epoch
                    ),
                ));
            }
        }
        let want = config_hash(&sim.cfg);
        if data.config_hash != want {
            return Err(SimError::Checkpoint {
                detail: format!(
                    "{}: taken under a different configuration \
                     (hash {:#018x}, this run's is {want:#018x})",
                    path.display(),
                    data.config_hash
                ),
            });
        }
        sim.restore_payload(&data.payload)
            .map_err(|e| SimError::Checkpoint {
                detail: format!("{}: {e}", path.display()),
            })?;
        if sim.cycle != data.cycle {
            return Err(SimError::Checkpoint {
                detail: format!(
                    "{}: header cycle {} disagrees with payload cycle {}",
                    path.display(),
                    data.cycle,
                    sim.cycle
                ),
            });
        }
        Ok(sim)
    }

    /// Serializes the complete dynamic state (cycle, cores, memory, and —
    /// when tracing is on — the recorder, so a resumed run continues its
    /// trace seamlessly).
    fn snapshot_payload(&self) -> Vec<u8> {
        let Simulation {
            cfg: _,
            cores,
            mem,
            cycle,
            obs,
        } = self;
        let mut w = SnapshotWriter::new();
        w.put_u64(*cycle);
        w.put_usize(cores.len());
        for slot in cores {
            slot.save_state(&mut w);
        }
        mem.save_state(&mut w);
        match obs {
            None => w.put_bool(false),
            Some(rec) => {
                w.put_bool(true);
                let rec = rec.borrow();
                let (_, _, capacity) = rec.ring_stats();
                w.put_usize(capacity);
                rec.save_state(&mut w);
            }
        }
        w.into_bytes()
    }

    /// Restores the dynamic state written by
    /// [`snapshot_payload`](Simulation::snapshot_payload).
    fn restore_payload(&mut self, payload: &[u8]) -> Result<(), SnapshotError> {
        let Simulation {
            cfg,
            cores,
            mem,
            cycle,
            obs,
        } = self;
        let mut r = SnapshotReader::new(payload);
        *cycle = r.get_u64()?;
        let n = r.get_usize()?;
        if n != cores.len() {
            return Err(SnapshotError::new(format!(
                "core count mismatch: checkpoint has {n}, configuration builds {}",
                cores.len()
            )));
        }
        for (core_idx, slot) in cores.iter_mut().enumerate() {
            slot.load_state(&mut r, cfg, core_idx, mem.sapp_present)?;
        }
        mem.load_state(&mut r)?;
        if r.get_bool()? {
            let capacity = r.get_usize()?;
            // Filter and sampling interval are run options, not state;
            // `enable_tracing` overrides these defaults when the resumed
            // run passes its own.
            let rec = obs.take().unwrap_or_else(|| {
                doram_obs::Recorder::shared(
                    capacity,
                    doram_obs::FILTER_ALL,
                    doram_obs::DEFAULT_METRICS_EVERY,
                )
            });
            rec.borrow_mut().load_state(&mut r)?;
            wire_obs(mem, &rec);
            *obs = Some(rec);
        }
        r.finish()
    }

    /// Writes a `ckpt-<cycle>.dorc` file into `dir` crash-consistently,
    /// stamped with this run's epoch and — when keyed — an authentication
    /// tag over the whole header and payload.
    fn write_checkpoint_file(
        &self,
        dir: &Path,
        hash: u64,
        epoch: u64,
        key: Option<u64>,
    ) -> Result<PathBuf, SimError> {
        let path = dir.join(format!("ckpt-{:012}.dorc", self.cycle));
        let payload = self.snapshot_payload();
        let mut data = CheckpointData::unkeyed(hash, epoch, self.cycle, payload);
        if let Some(k) = key {
            data.auth = ckpt_mac(k).full_tag(&checkpoint_auth_message(&data));
        }
        write_checkpoint(&path, &data).map_err(|e| SimError::Checkpoint {
            detail: format!("writing {}: {e}", path.display()),
        })?;
        Ok(path)
    }

    /// The watchdog's forward-progress stamp: retired instructions plus
    /// DRAM column commands, both monotone. Unchanged over a whole budget
    /// of cycles means nothing retired and nothing drained.
    fn progress_stamp(&self) -> u64 {
        let retired: u64 = self.cores.iter().map(|c| c.core.retired()).sum();
        retired + self.mem.backend.column_ops()
    }

    /// Structured diagnostic dump of every component's dynamic state for
    /// [`SimError::Stalled`]. When tracing is on, the dump also carries
    /// the latest latched metrics and the tail of the event log — the
    /// last things that happened before progress stopped.
    fn stall_dump(&self) -> StallDump {
        let cores = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, slot)| CoreStall {
                index: i,
                is_sapp: slot.is_sapp,
                retired: slot.core.retired(),
                finished: slot.core.finished(),
                restarts: slot.restarts,
            })
            .collect();
        let (metrics, recent_events) = match &self.obs {
            Some(obs) => {
                let rec = obs.borrow();
                (rec.metrics.latest(), rec.recent_events(STALL_EVENT_TAIL))
            }
            None => (Vec::new(), Vec::new()),
        };
        StallDump {
            cores,
            blocked_reads: self.mem.owners.len() as u64,
            components: self.mem.backend.debug_lines(),
            metrics,
            recent_events,
        }
    }

    /// Samples the telemetry gauges into the recorder's time-series when
    /// the sampling interval elapses. A single branch when tracing is off.
    fn sample_metrics(&self, m: u64) {
        let Some(obs) = &self.obs else { return };
        let mut rec = obs.borrow_mut();
        if !rec.metrics.due(m) {
            return;
        }
        rec.metrics.set("blocked_reads", self.mem.owners.len() as f64);
        match &self.mem.backend {
            Backend::Plain { fabric }
            | Backend::BaselineOram { fabric, .. }
            | Backend::SecMem { fabric, .. } => {
                for i in 0..fabric.len() {
                    rec.metrics
                        .set(&format!("ch{i}.util"), fabric.channel(i).bus_utilization());
                }
            }
            Backend::DOram {
                normals,
                secure,
                engine,
                split_fwd,
                pending_split,
                pending_deliver,
            } => {
                let st = engine.stats();
                let real = st.real_sent.get();
                let dummy = st.dummies_sent.get();
                rec.metrics.set("engine.queue", engine.queue_len() as f64);
                rec.metrics.set("engine.sent", (real + dummy) as f64);
                let rate = if real + dummy > 0 {
                    real as f64 / (real + dummy) as f64
                } else {
                    0.0
                };
                rec.metrics.set("engine.real_rate", rate);
                rec.metrics.set("sd.queue", secure.sd_queue_len() as f64);
                rec.metrics.set("sd.out_pending", secure.out_pending_len() as f64);
                for i in 0..secure.sub_channel_count() {
                    let sub = secure.sub_channel(i);
                    rec.metrics.set(&format!("sd.sub{i}.queue"), sub.queued() as f64);
                    rec.metrics
                        .set(&format!("sd.sub{i}.util"), sub.stats().bus_utilization());
                }
                for i in 0..normals.len() {
                    rec.metrics
                        .set(&format!("ch{}.util", i + 1), normals.channel(i).bus_utilization());
                }
                let sd = secure.sd_fault_stats();
                let mut link = secure.link_stats();
                link.absorb(&normals.link_stats());
                rec.metrics
                    .set("fault.integrity_failures", sd.integrity_failures as f64);
                rec.metrics.set("fault.refetches", sd.refetches as f64);
                rec.metrics
                    .set("fault.retransmissions", link.retransmissions as f64);
                rec.metrics
                    .set("fault.parity_rebuilds", sd.parity_rebuilds as f64);
                rec.metrics
                    .set("fault.scrub_repairs", sd.scrub_repairs as f64);
                for (i, h) in sd.health.iter().enumerate() {
                    rec.metrics
                        .set(&format!("health.sub{i}"), *h as u8 as f64);
                }
                let (lm, lc) = secure.link_health();
                rec.metrics.set("health.link_to_mem", lm as u8 as f64);
                rec.metrics.set("health.link_to_cpu", lc as u8 as f64);
                let split_backlog = split_fwd.len() + pending_split.len() + pending_deliver.len();
                rec.metrics.set("split.backlog", split_backlog as f64);
            }
        }
        rec.metrics.sample(m);
    }

    /// Like [`run`](Simulation::run), but records every DRAM device
    /// command and re-validates the full JEDEC rule set with the
    /// independent checker of [`doram_dram::conformance`] before
    /// reporting. Slower and memory-hungry; meant for validation suites.
    ///
    /// # Errors
    ///
    /// [`SimError::CycleCapExceeded`] or [`SimError::JedecViolation`].
    pub fn run_with_conformance_check(mut self) -> Result<RunReport, SimError> {
        // Enable tracing everywhere.
        match &mut self.mem.backend {
            Backend::Plain { fabric }
            | Backend::BaselineOram { fabric, .. }
            | Backend::SecMem { fabric, .. } => {
                for i in 0..fabric.len() {
                    fabric.channel_mut(i).enable_command_traces();
                }
            }
            Backend::DOram {
                normals, secure, ..
            } => {
                secure.enable_command_traces();
                for i in 0..normals.len() {
                    normals.channel_mut(i).enable_command_traces();
                }
            }
        }
        let timing = self.cfg.timing;
        let (report, traces) = self.run_inner(true, &RunOptions::default())?;
        for (idx, trace) in traces.into_iter().enumerate() {
            if let Err(v) = doram_dram::check_conformance(&trace, &timing) {
                return Err(SimError::JedecViolation {
                    sub_channel: idx,
                    detail: v[0].to_string(),
                });
            }
        }
        Ok(report)
    }

    /// Runs to completion (every NS-App finished its trace once).
    ///
    /// # Errors
    ///
    /// [`SimError::CycleCapExceeded`] if the safety cap is hit first.
    pub fn run(self) -> Result<RunReport, SimError> {
        self.run_with(&RunOptions::default())
    }

    /// Like [`run`](Simulation::run), with crash-safety harness features:
    /// periodic checkpointing, the liveness watchdog, and graceful
    /// shutdown on SIGINT/SIGTERM. Continues from the checkpointed cycle
    /// when `self` came from [`Simulation::resume`].
    ///
    /// # Errors
    ///
    /// Everything [`run`](Simulation::run) returns, plus
    /// [`SimError::Config`] for invalid options, [`SimError::Checkpoint`]
    /// for checkpoint I/O failures, [`SimError::Stalled`] when the
    /// watchdog fires, and [`SimError::Interrupted`] on graceful shutdown.
    pub fn run_with(self, opts: &RunOptions) -> Result<RunReport, SimError> {
        self.run_inner(false, opts).map(|(report, _)| report)
    }

    fn run_inner(
        mut self,
        collect_traces: bool,
        opts: &RunOptions,
    ) -> Result<(RunReport, Vec<Vec<doram_dram::CommandRecord>>), SimError> {
        opts.validate(&self.cfg)?;
        let cap = self.cfg.max_mem_cycles;
        let debug = std::env::var_os("DORAM_DEBUG").is_some();
        let ckpt_hash = config_hash(&self.cfg);
        // Claim this run's epoch up front: the marker is durably bumped
        // before any checkpoint carries it, so even a crash mid-run leaves
        // older-epoch files detectable as rolled back.
        let ckpt_epoch = match &opts.checkpoint_dir {
            Some(dir) => allocate_epoch(dir)?,
            None => 0,
        };
        let start_cycle = self.cycle;
        if opts.handle_signals {
            install_signal_handlers();
        }
        let mut last_progress = self.progress_stamp();
        let mut last_progress_cycle = self.cycle;
        // Host self-profiler: wall-clock throughput plus a strided sample
        // of where host time goes. Never checkpointed; purely diagnostic.
        let prof_ids = self.obs.as_ref().map(|obs| {
            let mut rec = obs.borrow_mut();
            rec.prof.begin_segment();
            (
                rec.prof.component("cpu.step"),
                rec.prof.component("memory.tick"),
            )
        });
        loop {
            let m = self.cycle;
            if m >= cap {
                return Err(SimError::CycleCapExceeded { cap });
            }
            if opts.handle_signals && SHUTDOWN.load(Ordering::SeqCst) {
                SHUTDOWN.store(false, Ordering::SeqCst);
                let checkpoint = match &opts.checkpoint_dir {
                    Some(dir) => {
                        Some(self.write_checkpoint_file(dir, ckpt_hash, ckpt_epoch, opts.ckpt_key)?)
                    }
                    None => None,
                };
                return Err(SimError::Interrupted { at: m, checkpoint });
            }
            if let (Some(every), Some(dir)) = (opts.checkpoint_every, &opts.checkpoint_dir) {
                // State here reflects cycles 0..m completed; skip the
                // trivial cycle-0 file and the cycle a resume started at
                // (its checkpoint already exists).
                if m > 0 && m != start_cycle && m.is_multiple_of(every) {
                    self.write_checkpoint_file(dir, ckpt_hash, ckpt_epoch, opts.ckpt_key)?;
                }
            }
            if let Some(budget) = opts.watchdog_budget {
                let p = self.progress_stamp();
                if p != last_progress {
                    last_progress = p;
                    last_progress_cycle = m;
                } else if m - last_progress_cycle >= budget {
                    return Err(SimError::Stalled {
                        at: m,
                        budget,
                        dump: self.stall_dump(),
                    });
                }
            }
            if debug && m.is_multiple_of(50_000) {
                let retired: Vec<u64> = self.cores.iter().map(|c| c.core.retired()).collect();
                let oram = match &self.mem.backend {
                    Backend::BaselineOram { fabric, fsm, oram_ids } => {
                        let chs: Vec<String> = (0..fabric.len())
                            .map(|i| match fabric.channel(i) {
                                crate::channels::Channel::Direct(sc) => {
                                    format!("ch{i}[{}]", sc.debug_state())
                                }
                                _ => String::new(),
                            })
                            .collect();
                        format!(
                            "oram real={} busy={} outstanding={} | {}",
                            fsm.stats().real_accesses.get(),
                            fsm.busy(),
                            oram_ids.len(),
                            chs.join(" ")
                        )
                    }
                    Backend::DOram { secure, engine, .. } => format!(
                        "sd real={} dummy={} eng sent={}/{} resp={}",
                        secure.oram_stats().real_accesses.get(),
                        secure.oram_stats().dummy_accesses.get(),
                        engine.stats().real_sent.get(),
                        engine.stats().dummies_sent.get(),
                        engine.stats().responses.get(),
                    ),
                    _ => String::new(),
                };
                eprintln!("[m={m}] retired={retired:?} {oram}");
            }
            let now = MemCycle(m);
            let prof_now = prof_ids
                .filter(|_| doram_obs::SelfProfiler::sample_due(m))
                .map(|ids| (ids, std::time::Instant::now()));

            // CPU: 4 cycles per memory cycle.
            for _ in 0..CPU_CYCLES_PER_MEM_CYCLE {
                for core_idx in 0..self.cores.len() {
                    let is_sapp = self.cores[core_idx].is_sapp;
                    let mut port = CorePort {
                        mem: &mut self.mem,
                        core_idx,
                        is_sapp,
                        now,
                        sapp_write_ok: false,
                    };
                    self.cores[core_idx].core.step(&mut port);
                }
            }
            let prof_cpu_done =
                prof_now.map(|(ids, t0)| (ids, t0.elapsed(), std::time::Instant::now()));

            // Memory side.
            tick_memory(&mut self.mem, now);
            if let (Some(((cpu_id, mem_id), cpu_cost, mem_t0)), Some(obs)) =
                (prof_cpu_done, &self.obs)
            {
                let mem_cost = mem_t0.elapsed();
                let mut rec = obs.borrow_mut();
                rec.prof.charge(cpu_id, cpu_cost);
                rec.prof.charge(mem_id, mem_cost);
            }
            self.sample_metrics(m);

            // Deliver read completions to cores.
            for (core_idx, id) in std::mem::take(&mut self.mem.ready_reads) {
                self.cores[core_idx].core.complete_read(id);
            }

            // Finish / restart bookkeeping.
            let mut all_ns_done = true;
            for (core_idx, slot) in self.cores.iter_mut().enumerate() {
                if slot.core.finished() {
                    if slot.first_finish_cpu.is_none() {
                        slot.first_finish_cpu = Some((m + 1) * CPU_CYCLES_PER_MEM_CYCLE);
                    }
                    // Restart to keep pressure constant.
                    slot.restarts += 1;
                    let accesses = if slot.is_sapp {
                        self.cfg.s_accesses
                    } else {
                        self.cfg.ns_accesses
                    };
                    let bench = if slot.is_sapp {
                        self.cfg.benchmark
                    } else {
                        self.cfg
                            .ns_benchmark(core_idx - usize::from(self.mem.sapp_present))
                    };
                    let stream = trace_stream_id(&self.cfg, core_idx, slot.restarts);
                    let gen = TraceGenerator::new(bench.spec(), self.cfg.seed, stream);
                    slot.core =
                        TraceCore::new(CoreConfig::default(), Box::new(gen.finite(accesses)));
                }
                if !slot.is_sapp && slot.first_finish_cpu.is_none() {
                    all_ns_done = false;
                }
            }
            if all_ns_done {
                break;
            }
            self.cycle += 1;
        }
        if let (Some(_), Some(obs)) = (prof_ids, &self.obs) {
            obs.borrow_mut()
                .prof
                .end_segment(self.cycle + 1 - start_cycle);
        }
        // Escalate exhausted SD integrity recovery: unauthenticated data
        // may have been served, so the run's results cannot be trusted.
        // Link retry exhaustion is different — the frame was still
        // delivered (the link latches the fault but keeps going), so a
        // run that drained afterwards completes and surfaces the latched
        // fault through `FaultReport::latched_fault` instead of silently
        // discarding its results behind a hard error.
        if let Backend::DOram { secure, .. } = &self.mem.backend {
            if let Some(fault) = secure.sd_fault() {
                return Err(SimError::IntegrityFailStop {
                    detail: fault.to_string(),
                });
            }
        }
        let traces = if collect_traces {
            match &mut self.mem.backend {
                Backend::Plain { fabric }
                | Backend::BaselineOram { fabric, .. }
                | Backend::SecMem { fabric, .. } => {
                    let mut all = Vec::new();
                    for i in 0..fabric.len() {
                        all.extend(fabric.channel_mut(i).take_command_traces());
                    }
                    all
                }
                Backend::DOram {
                    normals, secure, ..
                } => {
                    let mut all = secure.take_command_traces();
                    for i in 0..normals.len() {
                        all.extend(normals.channel_mut(i).take_command_traces());
                    }
                    all
                }
            }
        } else {
            Vec::new()
        };
        let total = self.cycle + 1;
        Ok((self.report(total), traces))
    }

    fn report(self, total_mem_cycles: u64) -> RunReport {
        let ns_exec: Vec<u64> = self
            .cores
            .iter()
            .filter(|c| !c.is_sapp)
            .map(|c| c.first_finish_cpu.expect("run ended with all NS done"))
            .collect();
        let s_exec = self
            .cores
            .iter()
            .find(|c| c.is_sapp)
            .and_then(|c| c.first_finish_cpu);

        let energy_params = doram_dram::EnergyParams::ddr3_1600();
        let (channel_utilization, channel_row_hit, oram, secure_link_bytes, channel_energy, faults) =
            match &self.mem.backend {
                Backend::Plain { fabric } => (
                    (0..fabric.len()).map(|i| fabric.channel(i).bus_utilization()).collect(),
                    (0..fabric.len()).map(|i| fabric.channel(i).row_hit_rate()).collect(),
                    None,
                    None,
                    (0..fabric.len()).map(|i| fabric.channel(i).energy(&energy_params)).collect(),
                    None,
                ),
                Backend::BaselineOram { fabric, fsm, .. } => (
                    (0..fabric.len()).map(|i| fabric.channel(i).bus_utilization()).collect(),
                    (0..fabric.len()).map(|i| fabric.channel(i).row_hit_rate()).collect(),
                    Some(summarize(fsm.stats())),
                    None,
                    (0..fabric.len()).map(|i| fabric.channel(i).energy(&energy_params)).collect(),
                    None,
                ),
                Backend::SecMem { fabric, .. } => (
                    (0..fabric.len()).map(|i| fabric.channel(i).bus_utilization()).collect(),
                    (0..fabric.len()).map(|i| fabric.channel(i).row_hit_rate()).collect(),
                    None,
                    None,
                    (0..fabric.len()).map(|i| fabric.channel(i).energy(&energy_params)).collect(),
                    None,
                ),
                Backend::DOram {
                    normals, secure, ..
                } => {
                    let n_subs = secure.sub_channel_count();
                    let sec_util = (0..n_subs)
                        .map(|i| secure.sub_channel(i).stats().bus_utilization())
                        .sum::<f64>()
                        / n_subs as f64;
                    let sec_hit = (0..n_subs)
                        .map(|i| secure.sub_channel(i).stats().row_hit_rate())
                        .sum::<f64>()
                        / n_subs as f64;
                    let mut util = vec![sec_util];
                    let mut hit = vec![sec_hit];
                    let mut energy = vec![secure.energy(&energy_params)];
                    for i in 0..normals.len() {
                        util.push(normals.channel(i).bus_utilization());
                        hit.push(normals.channel(i).row_hit_rate());
                        energy.push(normals.channel(i).energy(&energy_params));
                    }
                    (
                        util,
                        hit,
                        Some(summarize(secure.oram_stats())),
                        Some(secure.link_bytes()),
                        energy,
                        Some(fault_report(secure, normals)),
                    )
                }
            };

        let per_core_mlp = self
            .cores
            .iter()
            .map(|c| c.core.stats().mean_mlp())
            .collect();
        RunReport {
            scheme: self.cfg.scheme,
            benchmark: self.cfg.benchmark,
            ns_exec_cpu_cycles: ns_exec,
            s_exec_cpu_cycles: s_exec,
            ns_read_latency: self.mem.ns_read_latency,
            ns_write_latency: self.mem.ns_write_latency,
            per_app_read_latency: self.mem.per_app_read_latency,
            ns_read_histogram: self.mem.ns_read_histogram,
            channel_utilization,
            channel_row_hit,
            oram,
            secure_link_bytes,
            channel_energy,
            per_core_mlp,
            total_mem_cycles,
            faults,
        }
    }
}

/// Aggregates fault and recovery counters over the secure channel and
/// every normal channel's link.
fn fault_report(secure: &SecureChannel, normals: &ChannelFabric) -> crate::metrics::FaultReport {
    let mut injected = secure.fault_counts();
    injected.absorb(&normals.fault_counts());
    let mut link = secure.link_stats();
    link.absorb(&normals.link_stats());
    let sd = secure.sd_fault_stats();
    crate::metrics::FaultReport {
        injected,
        retransmissions: link.retransmissions,
        crc_errors: link.crc_errors,
        timeouts: link.timeouts,
        exhausted_retries: link.exhausted_retries,
        link_recovery_cycles: link.recovery_cycles,
        integrity_failures: sd.integrity_failures,
        refetches: sd.refetches,
        sd_recovery_cycles: sd.recovery_cycles,
        quarantined_subs: sd.quarantined_subs,
        parity_rebuilds: sd.parity_rebuilds,
        scrub_repairs: sd.scrub_repairs,
        // Link stale-drops are replays caught one layer down (sequence
        // check) before they could reach the SD; fold them in.
        replay_detected: sd.replay_detected + link.stale_drops,
        relocation_detected: sd.relocation_detected,
        rollback_rejected: sd.rollback_rejected,
        freshness_ops: sd.freshness_ops,
        freshness_cycles: sd.freshness_cycles,
        sub_health: sd.health,
        quarantine_entries: sd.quarantine_entries,
        unhealthy_cycles: sd.unhealthy_cycles,
        // A drained run can still carry a latched link fault (the retry
        // budget ran out but the frame was delivered); record it.
        latched_fault: secure
            .fault()
            .or_else(|| normals.fault())
            .map(|f| f.to_string()),
    }
}

fn summarize(s: &crate::onchip_oram::OramStats) -> OramSummary {
    OramSummary {
        real_accesses: s.real_accesses.get(),
        dummy_accesses: s.dummy_accesses.get(),
        access_latency: s.access_latency.mean(),
        read_phase_latency: s.read_phase_latency.mean(),
    }
}

/// Stream id: distinct per (segment, core, restart).
fn trace_stream_id(cfg: &SystemConfig, core_idx: usize, restart: u64) -> u64 {
    cfg.trace_stream * 1_000_000 + core_idx as u64 * 1_000 + restart
}

/// Disjoint-field view of [`MemoryState`] used while the backend is
/// mutably borrowed.
struct Recorder<'a> {
    owners: &'a mut HashMap<RequestId, usize>,
    ready_reads: &'a mut Vec<(usize, RequestId)>,
    ns_read_latency: &'a mut RunningMean,
    ns_write_latency: &'a mut RunningMean,
    per_app_read_latency: &'a mut [RunningMean],
    ns_read_histogram: &'a mut Histogram,
}

impl Recorder<'_> {
    /// Records an NS completion (latency stats + core wake-up).
    fn record(&mut self, c: &Completion) {
        let lat = (c.finished.0 - c.request.arrival.0) as f64;
        match c.request.op {
            MemOp::Read => {
                self.ns_read_latency.record(lat);
                self.ns_read_histogram.record(lat as u64);
                if let Some(m) = self.per_app_read_latency.get_mut(c.request.app.index()) {
                    m.record(lat);
                }
                self.wake(c.request.id);
            }
            MemOp::Write => self.ns_write_latency.record(lat),
        }
    }

    /// Wakes the core blocked on read `id`, if any.
    fn wake(&mut self, id: RequestId) {
        if let Some(core) = self.owners.remove(&id) {
            self.ready_reads.push((core, id));
        }
    }
}

/// One memory-cycle step of the backend.
fn tick_memory(mem: &mut MemoryState, now: MemCycle) {
    let MemoryState {
        backend,
        idgen,
        owners,
        ready_reads,
        ns_read_latency,
        ns_write_latency,
        per_app_read_latency,
        ns_read_histogram,
        obs,
        mux_split_res,
        mux_deliver_res,
        ..
    } = mem;
    let mut rec = Recorder {
        owners,
        ready_reads,
        ns_read_latency,
        ns_write_latency,
        per_app_read_latency,
        ns_read_histogram,
    };
    let mut completions: Vec<Completion> = Vec::new();
    match backend {
        Backend::Plain { fabric } => {
            fabric.tick(now, &mut completions);
            for c in completions {
                rec.record(&c);
            }
        }
        Backend::BaselineOram {
            fabric,
            fsm,
            oram_ids,
        } => {
            // Drive the ORAM controller.
            let mut events = Vec::new();
            {
                let mut sink = FabricSink {
                    fabric,
                    idgen,
                    app: AppId(0),
                    issued: oram_ids,
                };
                fsm.tick(now, &mut sink, &mut events);
            }
            for e in events {
                if let FsmEvent::ReadPhaseDone(OramJob::Real { id: Some(id), .. }) = e {
                    rec.wake(id);
                }
            }
            fabric.tick(now, &mut completions);
            for c in completions {
                if oram_ids.remove(&c.request.id) {
                    fsm.on_block_complete(c.request.id);
                } else {
                    rec.record(&c);
                }
            }
        }
        Backend::SecMem { fabric, frontend } => {
            fabric.tick(now, &mut completions);
            for c in completions {
                if frontend.owns(c.request.id) {
                    frontend.on_completion(c.request.id, c.finished);
                } else {
                    rec.record(&c);
                }
            }
            for id in frontend.poll_ready(now) {
                rec.wake(id);
            }
        }
        Backend::DOram {
            normals,
            secure,
            engine,
            split_fwd,
            pending_split,
            pending_deliver,
        } => {
            // CPU engine → secure link.
            if secure.can_send_secure() {
                if let Some(job) = engine.poll_send(now) {
                    secure.send_secure(job);
                }
            }

            // Secure channel.
            let mut ns_done = Vec::new();
            let mut responses = Vec::new();
            let mut sreads = Vec::new();
            let mut swrites = Vec::new();
            secure.tick(now, &mut ns_done, &mut responses, &mut sreads, &mut swrites);
            for job in responses {
                if let Some(core_read) = engine.on_response(job, now) {
                    rec.wake(core_read);
                }
            }
            for f in sreads {
                pending_split.push_back((f, MemOp::Read));
            }
            for f in swrites {
                pending_split.push_back((f, MemOp::Write));
            }

            // Forward split operations onto normal channels.
            while let Some(&(f, op)) = pending_split.front() {
                let id = idgen.next_id();
                let req = MemRequest {
                    id,
                    app: AppId(0),
                    op,
                    addr: SPLIT_REGION_BASE + f.addr,
                    class: RequestClass::Oram,
                    arrival: now,
                };
                match normals.channel_mut(f.channel - 1).try_enqueue(req, now) {
                    Ok(()) => {
                        if op == MemOp::Read {
                            split_fwd.insert(id, f);
                        }
                        pending_split.pop_front();
                    }
                    Err(_) => break,
                }
            }
            // Aggregate blame: split operations still held behind a full
            // normal channel waited this cycle, blamed on the head's class
            // (read fetches are the S-App's critical path; writes its
            // background writebacks).
            if let Some(res) = *mux_split_res {
                if let (Some(&(_, op)), Some(obs)) = (pending_split.front(), &*obs) {
                    let cls = match op {
                        MemOp::Read => doram_obs::BlameClass::SAppRead,
                        MemOp::Write => doram_obs::BlameClass::SAppWriteback,
                    };
                    let n = pending_split.len() as u64;
                    let mut rec = obs.borrow_mut();
                    rec.blame.wait(res, cls, n);
                    rec.blame.delay(res, n);
                }
            }

            // Normal channels.
            normals.tick(now, &mut completions);
            for c in completions.drain(..) {
                if c.request.class == RequestClass::Oram {
                    if let Some(f) = split_fwd.remove(&c.request.id) {
                        pending_deliver.push_back(f);
                    }
                    // Split writes complete silently.
                } else {
                    rec.record(&c);
                }
            }

            // Return fetched split blocks to the SD.
            while let Some(&f) = pending_deliver.front() {
                match secure.try_deliver_split_read(f) {
                    Ok(()) => {
                        pending_deliver.pop_front();
                    }
                    Err(_) => break,
                }
            }
            // Aggregate blame: fetched blocks still waiting for secure-link
            // capacity are on the S-App's read critical path.
            if let Some(res) = *mux_deliver_res {
                if let (false, Some(obs)) = (pending_deliver.is_empty(), &*obs) {
                    let n = pending_deliver.len() as u64;
                    let mut rec = obs.borrow_mut();
                    rec.blame.wait(res, doram_obs::BlameClass::SAppRead, n);
                    rec.blame.delay(res, n);
                }
            }

            for c in ns_done {
                rec.record(&c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doram_trace::Benchmark;

    fn quick(scheme: Scheme) -> RunReport {
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(scheme)
            .ns_accesses(400)
            .tree_l_max(12)
            .max_mem_cycles(20_000_000)
            .build()
            .unwrap();
        Simulation::new(cfg).unwrap().run().unwrap()
    }

    #[test]
    fn solo_runs_to_completion() {
        let r = quick(Scheme::SoloNs);
        assert_eq!(r.ns_exec_cpu_cycles.len(), 1);
        assert!(r.ns_exec_cpu_cycles[0] > 0);
        assert!(r.ns_read_latency.count() > 0);
    }

    #[test]
    fn corun_is_slower_than_solo() {
        let solo = quick(Scheme::SoloNs);
        let corun = quick(Scheme::Ns7on4);
        assert_eq!(corun.ns_exec_cpu_cycles.len(), 7);
        assert!(
            corun.ns_exec_mean() > solo.ns_exec_mean(),
            "7 co-runners must contend: solo {} vs corun {}",
            solo.ns_exec_mean(),
            corun.ns_exec_mean()
        );
    }

    #[test]
    fn three_channels_slower_than_four() {
        let four = quick(Scheme::Ns7on4);
        let three = quick(Scheme::Ns7on3);
        assert!(three.ns_exec_mean() > four.ns_exec_mean());
        // Channel 0 idles in the 3-channel partition.
        assert!(three.channel_utilization[0] < 0.01);
    }

    #[test]
    fn baseline_oram_interferes_heavily() {
        let plain = quick(Scheme::Ns7on4);
        let oram = quick(Scheme::Baseline);
        assert!(
            oram.ns_exec_mean() > plain.ns_exec_mean() * 1.1,
            "Path ORAM co-run must hurt NS-Apps: {} vs {}",
            oram.ns_exec_mean(),
            plain.ns_exec_mean()
        );
        let s = oram.oram.expect("ORAM stats present");
        assert!(s.real_accesses > 0);
        assert!(s.access_latency > 0.0);
    }

    #[test]
    fn doram_beats_baseline() {
        // Delegation pays off at realistic tree depth (the paper's L = 23),
        // where the Baseline's on-chip ORAM hammers all four channels; a
        // shallow tree underplays the interference delegation removes.
        let run = |scheme| {
            let cfg = SystemConfig::builder(Benchmark::Mummer)
                .scheme(scheme)
                .ns_accesses(800)
                .max_mem_cycles(50_000_000)
                .build()
                .unwrap();
            Simulation::new(cfg).unwrap().run().unwrap()
        };
        let base = run(Scheme::Baseline);
        let doram = run(Scheme::DOram { k: 0, c: 7 });
        assert!(
            doram.ns_exec_mean() < base.ns_exec_mean(),
            "delegation must relieve NS-Apps: D-ORAM {} vs Baseline {}",
            doram.ns_exec_mean(),
            base.ns_exec_mean()
        );
        assert!(doram.secure_link_bytes.unwrap().0 > 0);
        assert!(doram.oram.unwrap().dummy_accesses > 0, "pacing dummies ran");
    }

    #[test]
    fn secmem_runs() {
        let r = quick(Scheme::SecureMemory);
        assert_eq!(r.ns_exec_cpu_cycles.len(), 7);
        assert!(r.oram.is_none());
    }

    #[test]
    fn doram_split_runs() {
        let r = quick(Scheme::DOram { k: 1, c: 7 });
        assert_eq!(r.ns_exec_cpu_cycles.len(), 7);
        assert!(r.oram.unwrap().real_accesses > 0);
    }

    #[test]
    fn doram_sharing_c0_keeps_ns_off_secure_channel() {
        let r = quick(Scheme::DOram { k: 0, c: 0 });
        // All NS data on channels 1-3; the secure channel only serves the
        // S-App (so its NS utilization share is ORAM-only).
        assert_eq!(r.ns_exec_cpu_cycles.len(), 7);
    }

    #[test]
    fn partitioned_sapp_keeps_normal_channels_clean() {
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(Scheme::Partition1S)
            .ns_accesses(400)
            .tree_l_max(12)
            .max_mem_cycles(50_000_000)
            .build()
            .unwrap();
        let r = Simulation::new(cfg).unwrap().run().unwrap();
        assert_eq!(r.ns_exec_cpu_cycles.len(), 7);
        let o = r.oram.expect("on-chip ORAM ran");
        assert!(o.real_accesses > 0);
        // All ORAM traffic is on channel #0; it must be the busiest, and
        // the NS channels carry only NS traffic.
        assert!(
            r.channel_utilization[0] > r.channel_utilization[1],
            "utils {:?}",
            r.channel_utilization
        );
    }

    #[test]
    fn heterogeneous_mix_runs_distinct_benchmarks() {
        let mix = vec![
            Benchmark::Libq,
            Benchmark::Mummer,
            Benchmark::Black,
            Benchmark::Face,
            Benchmark::Tigr,
            Benchmark::Comm1,
            Benchmark::Stream,
        ];
        let cfg = SystemConfig::builder(Benchmark::Mummer)
            .scheme(Scheme::Ns7on4)
            .ns_accesses(300)
            .ns_benchmarks(mix)
            .build()
            .unwrap();
        let r = Simulation::new(cfg).unwrap().run().unwrap();
        assert_eq!(r.ns_exec_cpu_cycles.len(), 7);
        // Different MPKIs must produce visibly different execution times.
        assert!(r.ns_exec_worst() > 2 * r.ns_exec_best(), "{:?}", r.ns_exec_cpu_cycles);
    }

    #[test]
    fn mix_length_is_validated() {
        let bad = SystemConfig::builder(Benchmark::Black)
            .scheme(Scheme::Ns7on4)
            .ns_benchmarks(vec![Benchmark::Libq; 3])
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn faulty_doram_run_recovers_with_only_latency_cost() {
        use doram_sim::fault::{FaultPlan, FaultRates};
        // error_rate_ppm = 500 on the links plus DRAM bit flips at the SD
        // — the acceptance scenario: the run completes, fault counters are
        // nonzero, recovery latency is broken out, and the workload's
        // completion profile matches the fault-free run (recovery hides
        // faults from correctness, costing only cycles).
        let run = |plan: FaultPlan| {
            let cfg = SystemConfig::builder(Benchmark::Libq)
                .scheme(Scheme::DOram { k: 0, c: 7 })
                .ns_accesses(400)
                .tree_l_max(12)
                .max_mem_cycles(50_000_000)
                .fault_plan(plan)
                .build()
                .unwrap();
            Simulation::new(cfg).unwrap().run().unwrap()
        };
        let clean = run(FaultPlan::none());
        let faulty_plan = FaultPlan::with_rates(
            42,
            FaultRates {
                corrupt_ppm: 500,
                drop_ppm: 200,
                bitflip_ppm: 2_000,
                forge_mac_ppm: 500,
                ..FaultRates::none()
            },
        );
        let faulty = run(faulty_plan.clone());
        let fr = faulty.faults.as_ref().expect("D-ORAM reports faults");
        assert!(fr.any_activity(), "faults must have fired: {fr:?}");
        assert!(fr.injected.total() > 0);
        assert!(fr.total_recovery_cycles() > 0, "recovery costs latency");
        assert!(fr.quarantined_subs.is_empty(), "rates stay sub-threshold");
        // The clean run reports an all-zero fault block.
        let cr = clean.faults.as_ref().expect("fault block present");
        assert!(!cr.any_activity(), "no faults without a plan: {cr:?}");
        // Same work got done either way (same accesses, same ORAM protocol
        // work); the runs differ only in time.
        assert_eq!(faulty.ns_exec_cpu_cycles.len(), clean.ns_exec_cpu_cycles.len());
        let co = clean.oram.as_ref().unwrap();
        let fo = faulty.oram.as_ref().unwrap();
        assert!(fo.real_accesses > 0);
        // Same seed ⇒ same deterministic fault schedule.
        let again = run(faulty_plan);
        let fr2 = again.faults.as_ref().unwrap();
        assert_eq!(fr2, fr, "fault schedule must be reproducible");
        assert_eq!(again.ns_exec_cpu_cycles, faulty.ns_exec_cpu_cycles);
        assert!(co.access_latency > 0.0 && fo.access_latency > 0.0);
    }

    #[test]
    fn hostile_memory_fail_stops_the_run() {
        use doram_sim::fault::{FaultPlan, FaultRates};
        // Forge every MAC at the SD: recovery cannot converge and the run
        // must end in IntegrityFailStop rather than report results.
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(Scheme::DOram { k: 0, c: 7 })
            .ns_accesses(400)
            .tree_l_max(12)
            .max_mem_cycles(50_000_000)
            .fault_plan(FaultPlan::with_rates(
                7,
                FaultRates {
                    forge_mac_ppm: 1_000_000,
                    ..FaultRates::none()
                },
            ))
            .build()
            .unwrap();
        let err = Simulation::new(cfg).unwrap().run().unwrap_err();
        assert!(
            matches!(err, SimError::IntegrityFailStop { .. }),
            "expected fail-stop, got {err:?}"
        );
    }

    #[test]
    fn drained_run_surfaces_latched_link_fault() {
        use doram_sim::fault::{FaultPlan, FaultRates, FaultWindow};
        // A short 100%-corruption burst on the secure link exhausts at
        // least one frame's retry budget; the frame is still delivered,
        // so the run drains — and the latched fault must appear in the
        // report instead of being silently swallowed.
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(Scheme::DOram { k: 0, c: 7 })
            .ns_accesses(400)
            .tree_l_max(12)
            .max_mem_cycles(50_000_000)
            .fault_plan(
                FaultPlan {
                    seed: 11,
                    ..FaultPlan::none()
                }
                .site_window(
                    0,
                    FaultWindow {
                        start: doram_sim::MemCycle(1_000),
                        end: doram_sim::MemCycle(6_000),
                        rates: FaultRates {
                            corrupt_ppm: 1_000_000,
                            ..FaultRates::none()
                        },
                    },
                ),
            )
            .build()
            .unwrap();
        let report = Simulation::new(cfg).unwrap().run().unwrap();
        let fr = report.faults.as_ref().expect("fault block present");
        assert!(fr.exhausted_retries > 0, "budget must have run out: {fr:?}");
        let latched = fr
            .latched_fault
            .as_ref()
            .expect("latched fault surfaces in the drained run's report");
        assert!(latched.contains("retry budget exhausted"), "{latched}");
        assert!(fr.any_activity());
    }

    fn ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("doram-sys-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Path of the checkpoint with the highest cycle in `dir`.
    fn latest_checkpoint(dir: &std::path::Path) -> std::path::PathBuf {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "dorc"))
            .collect();
        files.sort();
        files.pop().expect("at least one checkpoint written")
    }

    #[test]
    fn run_options_validation() {
        let cfg = SystemConfig::builder(Benchmark::Libq).build().unwrap();
        let reject = |opts: RunOptions, needle: &str| {
            let err = opts.validate(&cfg).unwrap_err();
            match &err {
                SimError::Config { detail } => {
                    assert!(detail.contains(needle), "{detail} missing '{needle}'")
                }
                other => panic!("expected Config error, got {other:?}"),
            }
        };
        reject(
            RunOptions {
                checkpoint_every: Some(0),
                checkpoint_dir: Some("/tmp".into()),
                ..RunOptions::default()
            },
            "at least one",
        );
        reject(
            RunOptions {
                checkpoint_every: Some(100),
                ..RunOptions::default()
            },
            "directory",
        );
        // ddr3-1600 round trip: tRCD 11 + CL 11 + burst 4 + tRP 11 = 37.
        reject(
            RunOptions {
                watchdog_budget: Some(36),
                ..RunOptions::default()
            },
            "round trip",
        );
        let ok = RunOptions {
            checkpoint_every: Some(1),
            checkpoint_dir: Some("/tmp".into()),
            watchdog_budget: Some(37),
            ..RunOptions::default()
        };
        assert!(ok.validate(&cfg).is_ok());
        assert!(RunOptions::default().validate(&cfg).is_ok());
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let cfg = || {
            SystemConfig::builder(Benchmark::Libq)
                .scheme(Scheme::DOram { k: 1, c: 4 })
                .ns_accesses(300)
                .tree_l_max(12)
                .max_mem_cycles(20_000_000)
                .build()
                .unwrap()
        };
        let baseline = Simulation::new(cfg()).unwrap().run().unwrap();
        let dir = ckpt_dir("resume-identity");
        let opts = RunOptions {
            checkpoint_every: Some(2_000),
            checkpoint_dir: Some(dir.clone()),
            watchdog_budget: Some(1_000_000),
            ..RunOptions::default()
        };
        // Checkpointing must not perturb the run itself.
        let checkpointed = Simulation::new(cfg()).unwrap().run_with(&opts).unwrap();
        assert_eq!(format!("{checkpointed:?}"), format!("{baseline:?}"));
        // Resuming from the last checkpoint must land on the same report,
        // bit for bit (Debug shows f64s at round-trip precision).
        let ckpt = latest_checkpoint(&dir);
        let resumed = Simulation::resume(cfg(), &ckpt).unwrap().run().unwrap();
        assert_eq!(format!("{resumed:?}"), format!("{baseline:?}"));
        assert_eq!(
            crate::report::report_json(&resumed),
            crate::report::report_json(&baseline)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_other_configuration() {
        let cfg = |seed| {
            SystemConfig::builder(Benchmark::Libq)
                .scheme(Scheme::SoloNs)
                .ns_accesses(200)
                .seed(seed)
                .build()
                .unwrap()
        };
        let dir = ckpt_dir("cfg-mismatch");
        let opts = RunOptions {
            checkpoint_every: Some(500),
            checkpoint_dir: Some(dir.clone()),
            ..RunOptions::default()
        };
        Simulation::new(cfg(1)).unwrap().run_with(&opts).unwrap();
        let ckpt = latest_checkpoint(&dir);
        match Simulation::resume(cfg(2), &ckpt) {
            Err(SimError::Checkpoint { detail }) => {
                assert!(detail.contains("configuration"), "{detail}")
            }
            Err(other) => panic!("expected Checkpoint error, got {other:?}"),
            Ok(_) => panic!("resume under a different seed must be rejected"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_kills_stalled_run() {
        // Deliberately stalled configuration: a link whose propagation
        // delay is beyond the simulation horizon. Every frame "arrives"
        // ~10^12 cycles from now, so cores block on reads that never
        // complete; without the watchdog the run would grind until the
        // cycle cap (hanging CI at realistic caps).
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(Scheme::DOram { k: 0, c: 7 })
            .ns_accesses(400)
            .tree_l_max(12)
            .max_mem_cycles(50_000_000)
            .link(doram_bob::LinkConfig {
                latency: MemCycle(1 << 40),
                ..doram_bob::LinkConfig::default()
            })
            .build()
            .unwrap();
        let opts = RunOptions {
            watchdog_budget: Some(50_000),
            ..RunOptions::default()
        };
        let mut sim = Simulation::new(cfg).unwrap();
        sim.enable_tracing(1 << 12, doram_obs::FILTER_ALL, 10_000);
        let err = sim.run_with(&opts).unwrap_err();
        match &err {
            SimError::Stalled { at, budget, dump } => {
                assert_eq!(*budget, 50_000);
                assert!(*at < 10_000_000, "watchdog must beat the cycle cap");
                // The structured dump carries every component class…
                assert_eq!(dump.cores[0].index, 0);
                assert!(dump.cores[0].is_sapp);
                assert!(dump.components.iter().any(|c| c.starts_with("secure[")));
                assert!(dump.components.iter().any(|c| c.starts_with("engine[")));
                // …and, with tracing on, metrics and the event tail.
                assert!(!dump.metrics.is_empty(), "{dump}");
                assert!(!dump.recent_events.is_empty(), "{dump}");
                // The rendered form keeps the legacy grep targets.
                let text = dump.to_string();
                assert!(text.contains("core0"), "{text}");
                assert!(text.contains("secure["), "{text}");
                assert!(text.contains("engine["), "{text}");
                assert!(text.contains("blocked reads"), "{text}");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(err.to_string().contains("no forward progress"));
    }

    #[test]
    fn graceful_shutdown_checkpoints_and_resumes() {
        let cfg = || {
            SystemConfig::builder(Benchmark::Libq)
                .scheme(Scheme::Baseline)
                .ns_accesses(300)
                .tree_l_max(12)
                .max_mem_cycles(20_000_000)
                .build()
                .unwrap()
        };
        let baseline = Simulation::new(cfg()).unwrap().run().unwrap();
        let dir = ckpt_dir("graceful");
        let opts = RunOptions {
            checkpoint_dir: Some(dir.clone()),
            handle_signals: true,
            ..RunOptions::default()
        };
        // Simulate Ctrl-C before the first cycle (the handler just sets
        // the same flag request_shutdown sets).
        request_shutdown();
        let err = Simulation::new(cfg()).unwrap().run_with(&opts).unwrap_err();
        let SimError::Interrupted { at, checkpoint } = &err else {
            panic!("expected Interrupted, got {err:?}");
        };
        assert_eq!(*at, 0);
        let ckpt = checkpoint.as_ref().expect("final checkpoint written");
        assert!(ckpt.exists());
        // The interrupted run resumes into the same report.
        let resumed = Simulation::resume(cfg(), ckpt).unwrap().run().unwrap();
        assert_eq!(format!("{resumed:?}"), format!("{baseline:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cycle_cap_reports_error() {
        let cfg = SystemConfig::builder(Benchmark::Libq)
            .scheme(Scheme::SoloNs)
            .ns_accesses(400)
            .max_mem_cycles(10)
            .build()
            .unwrap();
        let err = Simulation::new(cfg).unwrap().run().unwrap_err();
        assert_eq!(err, SimError::CycleCapExceeded { cap: 10 });
        assert!(err.to_string().contains("10"));
    }
}

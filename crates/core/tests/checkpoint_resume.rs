//! Property tests for the crash-safe run harness: checkpointing at an
//! arbitrary interval must not perturb the simulation, and resuming from
//! any checkpoint taken mid-run must reproduce the uninterrupted
//! [`RunReport`] bit for bit — with and without an active fault plan.
//!
//! Bit-identity is checked two ways: on the `Debug` rendering (Rust prints
//! `f64` with round-trip precision, so any drift in a derived statistic
//! shows up) and on the serialized JSON the CLI emits.

use doram_core::report::report_json;
use doram_core::system::{RunOptions, Simulation};
use doram_core::{RunReport, Scheme, SystemConfig};
use doram_sim::fault::{FaultPlan, FaultRates};
use doram_trace::Benchmark;
use proptest::prelude::*;

/// A small D-ORAM run (~10k memory cycles) that still exercises the secure
/// channel, the ORAM engine, and split traffic — the hardest state to
/// checkpoint. `faulty` layers a sub-threshold fault plan on top so the
/// recovery machinery (retries, quarantine counters, latched faults) is
/// part of the snapshot too.
fn config(faulty: bool) -> SystemConfig {
    let plan = if faulty {
        FaultPlan::with_rates(
            42,
            FaultRates {
                corrupt_ppm: 500,
                drop_ppm: 200,
                bitflip_ppm: 2_000,
                forge_mac_ppm: 500,
                ..FaultRates::none()
            },
        )
    } else {
        FaultPlan::none()
    };
    SystemConfig::builder(Benchmark::Libq)
        .scheme(Scheme::DOram { k: 0, c: 7 })
        .ns_accesses(300)
        .tree_l_max(12)
        .max_mem_cycles(50_000_000)
        .fault_plan(plan)
        .build()
        .unwrap()
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "doram-ckpt-prop-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All checkpoint files in `dir`, sorted by cycle (the filename embeds the
/// cycle zero-padded, so lexicographic order is cycle order).
fn checkpoints(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "dorc"))
        .collect();
    files.sort();
    files
}

fn assert_reports_identical(what: &str, got: &RunReport, want: &RunReport) {
    assert_eq!(
        format!("{got:?}"),
        format!("{want:?}"),
        "{what}: Debug rendering differs"
    );
    assert_eq!(
        report_json(got),
        report_json(want),
        "{what}: JSON rendering differs"
    );
}

/// Core property: run to completion with periodic checkpoints, then pick
/// one of the checkpoints and resume from it; both the checkpointed run
/// and the resumed run must match the uninterrupted baseline exactly.
fn check_resume_identity(tag: &str, faulty: bool, every: u64, pick: usize) {
    let baseline = Simulation::new(config(faulty))
        .unwrap()
        .run()
        .unwrap();

    let dir = fresh_dir(tag);
    let opts = RunOptions {
        checkpoint_every: Some(every),
        checkpoint_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let checkpointed = Simulation::new(config(faulty))
        .unwrap()
        .run_with(&opts)
        .unwrap();
    assert_reports_identical("checkpointed run", &checkpointed, &baseline);

    let files = checkpoints(&dir);
    assert!(
        !files.is_empty(),
        "interval {every} produced no checkpoints in a ~10k-cycle run"
    );
    let chosen = &files[pick % files.len()];
    let resumed = Simulation::resume(config(faulty), chosen)
        .unwrap()
        .run()
        .unwrap();
    assert_reports_identical("resumed run", &resumed, &baseline);

    // Fault accounting must survive the round trip too, not just latency.
    if faulty {
        let fr = resumed.faults.as_ref().expect("fault block present");
        let br = baseline.faults.as_ref().expect("fault block present");
        assert_eq!(fr, br, "fault counters diverged across resume");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn resume_is_bit_identical_without_faults(every in 500u64..4_000, pick in 0usize..64) {
        check_resume_identity(&format!("clean-{every}-{pick}"), false, every, pick);
    }

    #[test]
    fn resume_is_bit_identical_under_faults(every in 500u64..4_000, pick in 0usize..64) {
        check_resume_identity(&format!("faulty-{every}-{pick}"), true, every, pick);
    }
}

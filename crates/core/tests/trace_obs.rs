//! End-to-end checks of the tracing & telemetry layer against a real
//! D-ORAM run: every completed ORAM access must appear in the event log
//! as a matched span whose per-subsystem breakdown telescopes back to
//! its end-to-end latency, tracing must not perturb the simulation, the
//! exported Chrome-trace file must survive its own validator, and a run
//! resumed from a checkpoint must continue the trace seamlessly.

use doram_core::system::{RunOptions, Simulation};
use doram_core::{Scheme, SystemConfig};
use doram_obs::{
    spans_from_events, validate_file, write_chrome_trace, EventKind, TraceSummary, FILTER_ALL,
};
use doram_trace::Benchmark;

/// The same small D-ORAM co-run the checkpoint property tests use: it
/// exercises the engine, the serial link, the SD's sub-channels, and the
/// stash — every instrumented component — in a few seconds.
fn config() -> SystemConfig {
    SystemConfig::builder(Benchmark::Libq)
        .scheme(Scheme::DOram { k: 0, c: 7 })
        .ns_accesses(300)
        .tree_l_max(12)
        .max_mem_cycles(50_000_000)
        .build()
        .unwrap()
}

const RING: usize = 1 << 18;
const EVERY: u64 = 2_000;

#[test]
fn traced_run_produces_complete_telescoping_spans() {
    let mut sim = Simulation::new(config()).unwrap();
    let rec = sim.enable_tracing(RING, FILTER_ALL, EVERY);
    let report = sim.run().unwrap();
    let oram = report.oram.expect("D-ORAM run has an ORAM summary");
    assert!(oram.real_accesses > 0, "run must complete real accesses");

    let rec = rec.borrow();
    let (len, dropped, capacity) = rec.ring_stats();
    assert_eq!(capacity, RING);
    assert_eq!(dropped, 0, "ring sized for the whole run ({len} events)");
    let events = rec.events();
    assert_eq!(events.len(), len);

    // Every access that came back to the engine has all four span edges.
    let ends = events
        .iter()
        .filter(|e| e.kind == EventKind::AccessEnd)
        .count();
    assert!(ends > 0, "no access completed its engine round trip");
    let spans = spans_from_events(&events);
    let complete: Vec<_> = spans.iter().filter(|s| s.complete()).collect();
    assert_eq!(
        complete.len(),
        ends,
        "every AccessEnd must close a matched begin/end span group"
    );

    // Per span the decomposition telescopes exactly: the DRAM window is
    // clamped into the SD interval and the stash share is the remainder.
    for s in &complete {
        assert_eq!(
            s.link_cycles() + s.dram_cycles() + s.stash_cycles(),
            s.total_cycles(),
            "span {} does not telescope",
            s.id
        );
        assert!(s.dram_cycles() > 0, "span {} saw no DRAM activity", s.id);
    }

    // ... so the summary's breakdown lands within the 1% acceptance bound
    // of the mean access latency.
    let dummies = events
        .iter()
        .filter(|e| e.kind == EventKind::DummyIssued)
        .count() as u64;
    assert!(dummies > 0, "fixed-rate pacing must issue dummies");
    let summary = TraceSummary::from_spans(&spans, dummies, dropped);
    assert_eq!(summary.accesses, complete.len() as u64);
    assert!(summary.mean_total > 0.0);
    let err = (summary.breakdown_sum() - summary.mean_total).abs() / summary.mean_total;
    assert!(
        err < 0.01,
        "breakdown {} vs mean latency {} off by {:.4}%",
        summary.breakdown_sum(),
        summary.mean_total,
        100.0 * err
    );

    // The metrics registry sampled on the configured cadence.
    assert!(rec.metrics.samples_taken() >= 2, "expected periodic samples");
    let series = rec.metrics.series();
    for name in ["engine.queue", "sd.queue", "sd.sub0.util"] {
        assert!(
            series.iter().any(|s| s.name == name),
            "missing time-series {name}"
        );
    }
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let plain = Simulation::new(config()).unwrap().run().unwrap();
    let mut sim = Simulation::new(config()).unwrap();
    let _rec = sim.enable_tracing(RING, FILTER_ALL, EVERY);
    let traced = sim.run().unwrap();
    assert_eq!(
        format!("{traced:?}"),
        format!("{plain:?}"),
        "tracing changed the simulation outcome"
    );
}

#[test]
fn exported_chrome_trace_passes_validation() {
    let mut sim = Simulation::new(config()).unwrap();
    let rec = sim.enable_tracing(RING, FILTER_ALL, EVERY);
    sim.run().unwrap();

    let path = std::env::temp_dir().join(format!("doram-trace-obs-{}.json", std::process::id()));
    {
        let rec = rec.borrow();
        let (_, dropped, _) = rec.ring_stats();
        write_chrome_trace(&path, &rec.events(), rec.metrics.series(), dropped).unwrap();
    }
    let v = validate_file(&path).unwrap_or_else(|e| panic!("{e}"));
    assert!(v.complete_accesses >= 1, "{v:?}");
    assert_eq!(v.mismatched, 0, "{v:?}");
    assert!(v.counter_samples > 0, "{v:?}");

    // The file round-trips into the same breakdown the in-memory events
    // produce (the summarize back end parses what the exporter wrote).
    let from_file = doram_obs::summarize_file(&path).unwrap_or_else(|e| panic!("{e}"));
    let rec = rec.borrow();
    let events = rec.events();
    let dummies = events
        .iter()
        .filter(|e| e.kind == EventKind::DummyIssued)
        .count() as u64;
    let in_memory = TraceSummary::from_spans(&spans_from_events(&events), dummies, 0);
    assert_eq!(from_file.accesses, in_memory.accesses);
    assert!((from_file.mean_total - in_memory.mean_total).abs() < 1e-6);
    assert!((from_file.mean_link - in_memory.mean_link).abs() < 1e-6);
    std::fs::remove_file(&path).ok();
}

#[test]
fn resumed_run_continues_the_trace() {
    // Reference: one uninterrupted traced run.
    let mut sim = Simulation::new(config()).unwrap();
    let rec = sim.enable_tracing(RING, FILTER_ALL, EVERY);
    let baseline = sim.run().unwrap();
    let baseline_events = rec.borrow().events();
    let baseline_samples = rec.borrow().metrics.samples_taken();

    // Traced run with periodic checkpoints; the recorder state rides in
    // each checkpoint.
    let dir = std::env::temp_dir().join(format!("doram-trace-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let opts = RunOptions {
        checkpoint_every: Some(2_000),
        checkpoint_dir: Some(dir.clone()),
        ..RunOptions::default()
    };
    let mut sim = Simulation::new(config()).unwrap();
    sim.enable_tracing(RING, FILTER_ALL, EVERY);
    sim.run_with(&opts).unwrap();

    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "dorc"))
        .collect();
    files.sort();
    assert!(files.len() >= 2, "expected several mid-run checkpoints");
    let mid = &files[files.len() / 2];

    // Resume restores the recorder from the checkpoint; enable_tracing on
    // a restored simulation only re-applies the run options (filter,
    // sampling cadence) and hands back the live recorder.
    let mut sim = Simulation::resume(config(), mid).unwrap();
    let rec = sim.enable_tracing(RING, FILTER_ALL, EVERY);
    assert!(
        !rec.borrow().events().is_empty(),
        "restored recorder must already hold the pre-checkpoint events"
    );
    let resumed = sim.run().unwrap();
    assert_eq!(format!("{resumed:?}"), format!("{baseline:?}"));

    // The continued trace is indistinguishable from the uninterrupted one.
    let rec = rec.borrow();
    assert_eq!(rec.events(), baseline_events, "event log diverged across resume");
    assert_eq!(rec.metrics.samples_taken(), baseline_samples);
    std::fs::remove_dir_all(&dir).ok();
}

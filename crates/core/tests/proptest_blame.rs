//! Property tests for the interference blame matrix: for any seeded
//! sub-threshold fault plan — link corruption/drops plus a bounded
//! MAC-forgery burst on a secure sub-channel — a traced D-ORAM co-run
//! keeps the telescoping invariant *exactly*: on every shared resource
//! the per-class attributed wait cycles sum to the independently
//! accumulated queueing delay, and the report built from the matrix
//! round-trips through its JSON encoding unchanged.

use doram_core::secure_channel::SD_SUB_SITE_BASE;
use doram_core::system::Simulation;
use doram_core::{Scheme, SystemConfig};
use doram_obs::{InterferenceReport, FILTER_ALL};
use doram_sim::fault::{FaultPlan, FaultRates, FaultWindow};
use doram_sim::MemCycle;
use doram_trace::Benchmark;
use proptest::prelude::*;

/// A small D-ORAM co-run that still exercises every instrumented
/// contention point (engine mux, serial links, SD holding buffers,
/// secure and normal sub-channels) in well under a second.
fn config(seed: u64, plan: FaultPlan) -> SystemConfig {
    SystemConfig::builder(Benchmark::Libq)
        .scheme(Scheme::DOram { k: 0, c: 7 })
        .ns_accesses(150)
        .seed(seed)
        .tree_l_max(10)
        .parity(true)
        .scrub_every(5_000)
        .fault_plan(plan)
        .max_mem_cycles(50_000_000)
        .build()
        .unwrap()
}

/// Sub-threshold link noise everywhere, plus a bounded forgery burst on
/// secure sub-channel 1 so integrity refetches and parity rebuilds show
/// up as their own blame classes.
fn plan(seed: u64, corrupt_ppm: u32, drop_ppm: u32, forge_ppm: u32) -> FaultPlan {
    FaultPlan::with_rates(
        seed,
        FaultRates {
            corrupt_ppm,
            drop_ppm,
            ..FaultRates::none()
        },
    )
    .site_window(
        SD_SUB_SITE_BASE + 1,
        FaultWindow {
            start: MemCycle(5_000),
            end: MemCycle(25_000),
            rates: FaultRates {
                forge_mac_ppm: forge_ppm,
                ..FaultRates::none()
            },
        },
    )
}

fn traced_report(seed: u64, p: FaultPlan) -> InterferenceReport {
    let mut sim = Simulation::new(config(seed, p)).unwrap();
    let rec = sim.enable_tracing(1 << 16, FILTER_ALL, 2_000);
    sim.run().unwrap();
    let rec = rec.borrow();
    // The raw matrix conserves...
    if let Err((name, attributed, delay)) = rec.blame.check_conservation() {
        panic!("'{name}': attributed {attributed} != queue delay {delay}");
    }
    InterferenceReport::from_recorder(&rec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under any sub-threshold fault plan the blame matrix telescopes:
    /// every resource's attributed waits equal its queueing delay, no
    /// cycle is double-counted or lost, and the JSON encoding is lossless.
    #[test]
    fn blame_conserves_under_fault_plans(
        seed in 0u64..500,
        corrupt_ppm in 0u32..40_000,
        drop_ppm in 0u32..20_000,
        forge_ppm in 0u32..200_000,
    ) {
        let rep = traced_report(seed, plan(seed, corrupt_ppm, drop_ppm, forge_ppm));
        // ... and so does the report built from it.
        prop_assert!(rep.check_conservation().is_ok());
        prop_assert!(!rep.blame.is_empty(), "a co-run must register resources");
        let delay: u64 = rep.blame.iter().map(|r| r.queue_delay).sum();
        let attributed: u64 = rep.blame.iter().map(|r| r.waits.iter().sum::<u64>()).sum();
        prop_assert_eq!(attributed, delay);
        prop_assert!(delay > 0, "a contended co-run must queue somewhere");
        // The encoding preserves the matrix exactly (every count is an
        // integer); float means are printed to three decimals, so they
        // round-trip to within that precision. The CI schema check and
        // baseline compare both depend on this.
        let back = InterferenceReport::from_json(&rep.to_json()).unwrap();
        prop_assert_eq!(&back.blame, &rep.blame);
        let close = |b: &doram_obs::interference::QuantileSummary,
                     r: &doram_obs::interference::QuantileSummary| {
            b.count == r.count
                && b.quantiles == r.quantiles
                && b.min == r.min
                && b.max == r.max
                && (b.mean - r.mean).abs() < 1e-3
        };
        match (&back.access, &rep.access) {
            (Some(b), Some(r)) => prop_assert!(close(b, r)),
            (b, r) => prop_assert_eq!(b.is_some(), r.is_some()),
        }
        prop_assert_eq!(back.classes.len(), rep.classes.len());
        for ((bn, bs), (rn, rs)) in back.classes.iter().zip(&rep.classes) {
            prop_assert_eq!(bn, rn);
            prop_assert!(close(bs, rs), "class '{}' drifted through JSON", rn);
        }
    }
}

/// The blame schedule is a pure function of the configuration: the same
/// seeded fault plan yields bit-identical matrices run-over-run (the
/// property the checked-in bench baseline relies on).
#[test]
fn blame_is_deterministic_for_a_fixed_seed() {
    let a = traced_report(7, plan(7, 25_000, 10_000, 120_000));
    let b = traced_report(7, plan(7, 25_000, 10_000, 120_000));
    assert_eq!(a.blame, b.blame);
    assert_eq!(a.access, b.access);
    assert_eq!(a.classes, b.classes);
}

//! End-to-end JEDEC conformance: record the scheduler's actual command
//! stream under randomized traffic and re-validate every timing rule with
//! the independent checker in `doram_dram::conformance`.

use doram_dram::{
    check_conformance, DramTiming, MemOp, MemRequest, PagePolicy, RequestClass, ShareArbiter,
    SubChannel, SubChannelConfig,
};
use doram_sim::rng::Xoshiro256;
use doram_sim::{AppId, MemCycle, RequestId};
use proptest::prelude::*;

fn drive_traced(cfg: SubChannelConfig, seed: u64, n_requests: u64) -> Vec<doram_dram::CommandRecord> {
    let mut sc = SubChannel::new(cfg);
    sc.enable_command_trace();
    let mut rng = Xoshiro256::seed_from(seed);
    let mut done = Vec::new();
    let mut issued = 0u64;
    let mut completed = 0usize;
    let mut now = 0u64;
    while (completed as u64) < n_requests {
        assert!(now < 2_000_000, "liveness: {completed}/{n_requests}");
        if issued < n_requests {
            let op = if rng.gen_bool(0.3) {
                MemOp::Write
            } else {
                MemOp::Read
            };
            let ok = match op {
                MemOp::Read => sc.can_accept_read(),
                MemOp::Write => sc.can_accept_write(),
            };
            if ok && rng.gen_bool(0.7) {
                sc.enqueue(MemRequest {
                    id: RequestId(issued),
                    app: AppId(0),
                    op,
                    addr: rng.gen_below(1 << 22) * 64,
                    class: if rng.gen_bool(0.4) {
                        RequestClass::Oram
                    } else {
                        RequestClass::Normal
                    },
                    arrival: MemCycle(now),
                })
                .expect("capacity checked");
                issued += 1;
            }
        }
        sc.tick(MemCycle(now), &mut done);
        completed = done.len();
        now += 1;
    }
    sc.take_command_trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The default scheduler never emits an illegal command sequence.
    #[test]
    fn default_scheduler_is_jedec_legal(seed in 0u64..1000) {
        let trace = drive_traced(SubChannelConfig::default(), seed, 300);
        prop_assert!(!trace.is_empty());
        if let Err(v) = check_conformance(&trace, &DramTiming::ddr3_1600()) {
            prop_assert!(false, "violations: {:?}", &v[..v.len().min(5)]);
        }
    }

    /// Neither arbitration mode compromises legality.
    #[test]
    fn arbiters_are_jedec_legal(seed in 0u64..500, priority in any::<bool>()) {
        let cfg = SubChannelConfig {
            arbiter: if priority {
                ShareArbiter::oram_priority()
            } else {
                ShareArbiter::paper_default()
            },
            ..SubChannelConfig::default()
        };
        let trace = drive_traced(cfg, seed, 250);
        if let Err(v) = check_conformance(&trace, &DramTiming::ddr3_1600()) {
            prop_assert!(false, "violations: {:?}", &v[..v.len().min(5)]);
        }
    }

    /// Closed-page auto-precharge stays legal too.
    #[test]
    fn closed_page_is_jedec_legal(seed in 0u64..500) {
        let cfg = SubChannelConfig {
            page_policy: PagePolicy::Closed,
            ..SubChannelConfig::default()
        };
        let trace = drive_traced(cfg, seed, 250);
        if let Err(v) = check_conformance(&trace, &DramTiming::ddr3_1600()) {
            prop_assert!(false, "violations: {:?}", &v[..v.len().min(5)]);
        }
    }
}

#[test]
fn trace_covers_refresh() {
    // A long-enough run crosses tREFI; the refresh command must appear in
    // the trace and still conform.
    let mut sc = SubChannel::new(SubChannelConfig::default());
    sc.enable_command_trace();
    let mut done = Vec::new();
    let mut id = 0u64;
    for c in 0..15_000u64 {
        if c % 50 == 0 && sc.can_accept_read() {
            let _ = sc.enqueue(MemRequest {
                id: RequestId(id),
                app: AppId(0),
                op: MemOp::Read,
                addr: id * 64,
                class: RequestClass::Normal,
                arrival: MemCycle(c),
            });
            id += 1;
        }
        sc.tick(MemCycle(c), &mut done);
    }
    let trace = sc.take_command_trace();
    assert!(
        trace
            .iter()
            .any(|r| r.command == doram_dram::DeviceCommand::Refresh),
        "refresh must appear within two tREFI"
    );
    check_conformance(&trace, &DramTiming::ddr3_1600()).expect("legal");
}

//! Property tests for the DDR3 sub-channel: conservation, latency bounds,
//! determinism, and liveness under arbitrary request mixes.

use doram_dram::{
    Completion, DramTiming, MemOp, MemRequest, RequestClass, ShareArbiter, SubChannel,
    SubChannelConfig,
};
use doram_sim::{AppId, MemCycle, RequestId};
use proptest::prelude::*;

/// A compact request description the strategies generate.
#[derive(Debug, Clone, Copy)]
struct Gen {
    line: u64,
    is_write: bool,
    is_oram: bool,
    gap: u64,
}

fn gen_requests(max: usize) -> impl Strategy<Value = Vec<Gen>> {
    prop::collection::vec(
        (0u64..4096, any::<bool>(), any::<bool>(), 0u64..30).prop_map(|(line, w, o, gap)| Gen {
            line,
            is_write: w,
            is_oram: o,
            gap,
        }),
        1..max,
    )
}

/// Drives a sub-channel until all `reqs` complete; returns completions.
fn drive(cfg: SubChannelConfig, reqs: &[Gen]) -> Vec<Completion> {
    let mut sc = SubChannel::new(cfg);
    let mut done = Vec::new();
    let mut pending: Vec<(u64, MemRequest)> = Vec::new();
    let mut at = 0u64;
    for (i, g) in reqs.iter().enumerate() {
        at += g.gap;
        pending.push((
            at,
            MemRequest {
                id: RequestId(i as u64),
                app: AppId(0),
                op: if g.is_write { MemOp::Write } else { MemOp::Read },
                addr: g.line * 64,
                class: if g.is_oram {
                    RequestClass::Oram
                } else {
                    RequestClass::Normal
                },
                arrival: MemCycle(0), // set at actual enqueue below
            },
        ));
    }
    let mut idx = 0;
    let mut now = 0u64;
    let limit = 1_000_000u64;
    while done.len() < reqs.len() {
        assert!(now < limit, "liveness: only {} of {} done", done.len(), reqs.len());
        while idx < pending.len() && pending[idx].0 <= now {
            let (_, mut r) = pending[idx];
            r.arrival = MemCycle(now);
            match r.op {
                MemOp::Read if !sc.can_accept_read() => break,
                MemOp::Write if !sc.can_accept_write() => break,
                _ => {}
            }
            sc.enqueue(r).expect("capacity checked");
            idx += 1;
        }
        sc.tick(MemCycle(now), &mut done);
        now += 1;
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes exactly once, with a latency no better
    /// than the device's physical minimum.
    #[test]
    fn conservation_and_latency_floor(reqs in gen_requests(120)) {
        let t = DramTiming::ddr3_1600();
        let done = drive(SubChannelConfig::default(), &reqs);
        prop_assert_eq!(done.len(), reqs.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.request.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), reqs.len(), "duplicate completion");
        for c in &done {
            let floor = match c.request.op {
                MemOp::Read => t.cl + t.t_burst,
                MemOp::Write => t.cwl + t.t_burst,
            };
            prop_assert!(
                c.latency() >= floor,
                "{:?} finished faster ({}) than physics ({floor})",
                c.request.op, c.latency()
            );
        }
    }

    /// The sub-channel is a deterministic function of its input stream.
    #[test]
    fn deterministic(reqs in gen_requests(80)) {
        let a = drive(SubChannelConfig::default(), &reqs);
        let b = drive(SubChannelConfig::default(), &reqs);
        prop_assert_eq!(a, b);
    }

    /// The bandwidth-preallocation arbiter never loses requests, whatever
    /// the class mix.
    #[test]
    fn arbiter_preserves_liveness(reqs in gen_requests(120)) {
        let cfg = SubChannelConfig {
            arbiter: ShareArbiter::paper_default(),
            ..SubChannelConfig::default()
        };
        let done = drive(cfg, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
    }

    /// Strict ORAM priority also stays live (the starvation valve works).
    #[test]
    fn priority_arbiter_preserves_liveness(reqs in gen_requests(120)) {
        let cfg = SubChannelConfig {
            arbiter: ShareArbiter::oram_priority(),
            ..SubChannelConfig::default()
        };
        let done = drive(cfg, &reqs);
        prop_assert_eq!(done.len(), reqs.len());
    }

    /// Reads to the same line observe program order *of service*: the
    /// data bus serializes bursts, so completions never tie.
    #[test]
    fn completions_have_distinct_burst_slots(reqs in gen_requests(60)) {
        let done = drive(SubChannelConfig::default(), &reqs);
        let mut finishes: Vec<u64> = done.iter().map(|c| c.finished.0).collect();
        finishes.sort_unstable();
        for w in finishes.windows(2) {
            prop_assert!(w[1] != w[0], "two bursts finished the same cycle");
        }
    }
}

#![warn(missing_docs)]

//! Cycle-level DDR3 DRAM model — the reproduction's substitute for USIMM.
//!
//! The unit of composition is the [`SubChannel`]: one rank of eight banks
//! behind a command/data bus, driven by an FR-FCFS scheduler with write
//! drains and refresh, enforcing the JEDEC DDR3-1600 timing constraints
//! (Table II of the paper). A direct-attached memory channel is one
//! sub-channel; the D-ORAM secure channel is four sub-channels behind a BOB
//! simple controller.
//!
//! Interference between the S-App and NS-Apps — the paper's core subject —
//! emerges here from exactly the mechanisms USIMM models: data-bus
//! occupancy, bank conflicts, row-buffer misses, write drains and refresh.
//! The bandwidth-preallocation arbiter of Cooperative Path ORAM
//! (Wang et al., HPCA'17 \[39\]; §IV of this paper sets its threshold to 50%)
//! lives in [`arbiter`].
//!
//! # Examples
//!
//! ```
//! use doram_dram::{SubChannel, SubChannelConfig, MemOp, RequestClass};
//! use doram_sim::{AppId, MemCycle, RequestId};
//!
//! let mut sc = SubChannel::new(SubChannelConfig::default());
//! sc.enqueue(doram_dram::MemRequest {
//!     id: RequestId(0),
//!     app: AppId(1),
//!     op: MemOp::Read,
//!     addr: 0x4000,
//!     class: RequestClass::Normal,
//!     arrival: MemCycle(0),
//! }).unwrap();
//! let mut done = Vec::new();
//! let mut now = MemCycle(0);
//! while done.is_empty() {
//!     sc.tick(now, &mut done);
//!     now += MemCycle(1);
//! }
//! assert_eq!(done[0].request.id, RequestId(0));
//! ```

pub mod address;
pub mod arbiter;
pub mod conformance;
pub mod energy;
pub mod bank;
pub mod request;
pub mod stats;
pub mod subchannel;
pub mod timing;

pub use address::{AddressMapper, DecodedAddress};
pub use arbiter::ShareArbiter;
pub use conformance::{check_conformance, CommandRecord, DeviceCommand, Violation};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use request::{Completion, MemOp, MemRequest, RequestClass};
pub use stats::SubChannelStats;
pub use subchannel::{PagePolicy, SubChannel, SubChannelConfig};
pub use timing::DramTiming;

//! Per-bank DRAM state machine.
//!
//! Each bank tracks its open row and the earliest cycle at which each
//! command type becomes legal, updated as commands are issued according to
//! the [`DramTiming`] constraints.

use crate::timing::DramTiming;
use doram_sim::MemCycle;

/// State of one DRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    /// Currently open row, if any.
    open_row: Option<u64>,
    /// Earliest cycle an ACTIVATE may be issued.
    ready_act: MemCycle,
    /// Earliest cycle a PRECHARGE may be issued.
    ready_pre: MemCycle,
    /// Earliest cycle a column command (READ/WRITE) may be issued.
    ready_col: MemCycle,
}

impl Default for Bank {
    fn default() -> Bank {
        Bank::new()
    }
}

impl Bank {
    /// A closed, immediately usable bank.
    pub fn new() -> Bank {
        Bank {
            open_row: None,
            ready_act: MemCycle::ZERO,
            ready_pre: MemCycle::ZERO,
            ready_col: MemCycle::ZERO,
        }
    }

    /// Row currently latched in the row buffer.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// Whether an ACTIVATE for `row` is needed and legal at `now`
    /// (bank-local constraints only; tRRD/tFAW are channel-level).
    pub fn can_activate(&self, now: MemCycle) -> bool {
        self.open_row.is_none() && now >= self.ready_act
    }

    /// Whether a PRECHARGE is legal at `now`.
    pub fn can_precharge(&self, now: MemCycle) -> bool {
        self.open_row.is_some() && now >= self.ready_pre
    }

    /// Whether a column command to `row` is legal at `now` (row must be
    /// open and tRCD satisfied).
    pub fn can_column(&self, row: u64, now: MemCycle) -> bool {
        self.open_row == Some(row) && now >= self.ready_col
    }

    /// Applies an ACTIVATE issued at `now`.
    pub fn activate(&mut self, row: u64, now: MemCycle, t: &DramTiming) {
        debug_assert!(self.can_activate(now), "illegal ACTIVATE");
        self.open_row = Some(row);
        self.ready_col = now + MemCycle(t.t_rcd);
        self.ready_pre = now + MemCycle(t.t_ras);
        // tRC lower-bounds the next ACT even beyond tRAS+tRP.
        self.ready_act = now + MemCycle(t.t_rc);
    }

    /// Applies a PRECHARGE issued at `now`.
    pub fn precharge(&mut self, now: MemCycle, t: &DramTiming) {
        debug_assert!(self.can_precharge(now), "illegal PRECHARGE");
        self.open_row = None;
        self.ready_act = self.ready_act.max(now + MemCycle(t.t_rp));
    }

    /// Applies a READ issued at `now`.
    pub fn read(&mut self, now: MemCycle, t: &DramTiming) {
        // Read-to-precharge: PRE no earlier than now + tRTP.
        self.ready_pre = self.ready_pre.max(now + MemCycle(t.t_rtp));
    }

    /// Applies a WRITE issued at `now`.
    pub fn write(&mut self, now: MemCycle, t: &DramTiming) {
        // Write recovery: PRE after the data burst lands plus tWR.
        self.ready_pre = self
            .ready_pre
            .max(now + MemCycle(t.cwl + t.t_burst + t.t_wr));
    }

    /// Forces the bank closed (used by the refresh state machine after all
    /// banks have been precharged) and blocks activates until `until`.
    pub fn block_until(&mut self, until: MemCycle) {
        debug_assert!(self.open_row.is_none(), "refresh with open row");
        self.ready_act = self.ready_act.max(until);
    }
}

impl doram_sim::snapshot::Snapshot for Bank {
    fn save_state(&self, w: &mut doram_sim::snapshot::SnapshotWriter) {
        let Bank {
            open_row,
            ready_act,
            ready_pre,
            ready_col,
        } = self;
        match open_row {
            None => w.put_bool(false),
            Some(row) => {
                w.put_bool(true);
                w.put_u64(*row);
            }
        }
        w.put_u64(ready_act.0);
        w.put_u64(ready_pre.0);
        w.put_u64(ready_col.0);
    }

    fn load_state(
        &mut self,
        r: &mut doram_sim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), doram_sim::snapshot::SnapshotError> {
        self.open_row = if r.get_bool()? {
            Some(r.get_u64()?)
        } else {
            None
        };
        self.ready_act = MemCycle(r.get_u64()?);
        self.ready_pre = MemCycle(r.get_u64()?);
        self.ready_col = MemCycle(r.get_u64()?);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> DramTiming {
        DramTiming::ddr3_1600()
    }

    #[test]
    fn activate_opens_row_after_trcd() {
        let mut b = Bank::new();
        assert!(b.can_activate(MemCycle(0)));
        b.activate(7, MemCycle(0), &t());
        assert_eq!(b.open_row(), Some(7));
        assert!(!b.can_column(7, MemCycle(10)));
        assert!(b.can_column(7, MemCycle(11)));
        assert!(!b.can_column(8, MemCycle(11)), "wrong row");
    }

    #[test]
    fn precharge_respects_tras_and_trp() {
        let mut b = Bank::new();
        b.activate(1, MemCycle(0), &t());
        assert!(!b.can_precharge(MemCycle(27)));
        assert!(b.can_precharge(MemCycle(28))); // tRAS
        b.precharge(MemCycle(28), &t());
        assert_eq!(b.open_row(), None);
        // next ACT must wait max(tRC from ACT, PRE+tRP) = max(39, 39) = 39.
        assert!(!b.can_activate(MemCycle(38)));
        assert!(b.can_activate(MemCycle(39)));
    }

    #[test]
    fn read_extends_precharge_window() {
        let mut b = Bank::new();
        b.activate(1, MemCycle(0), &t());
        b.read(MemCycle(30), &t());
        // PRE may not issue before read + tRTP = 36 (tRAS already passed).
        assert!(!b.can_precharge(MemCycle(35)));
        assert!(b.can_precharge(MemCycle(36)));
    }

    #[test]
    fn write_recovery_blocks_precharge() {
        let mut b = Bank::new();
        b.activate(1, MemCycle(0), &t());
        b.write(MemCycle(11), &t());
        // PRE >= 11 + CWL(8) + burst(4) + tWR(12) = 35; tRAS would allow 28.
        assert!(!b.can_precharge(MemCycle(34)));
        assert!(b.can_precharge(MemCycle(35)));
    }

    #[test]
    fn cannot_activate_open_bank() {
        let mut b = Bank::new();
        b.activate(1, MemCycle(0), &t());
        assert!(!b.can_activate(MemCycle(100)));
    }

    #[test]
    fn block_until_delays_activate() {
        let mut b = Bank::new();
        b.block_until(MemCycle(500));
        assert!(!b.can_activate(MemCycle(499)));
        assert!(b.can_activate(MemCycle(500)));
    }
}

//! Per-sub-channel statistics.

use doram_sim::stats::{Counter, RunningMean};

/// Counters and latency accumulators maintained by a
/// [`SubChannel`](crate::SubChannel).
#[derive(Debug, Clone, Default)]
pub struct SubChannelStats {
    /// READ column commands issued.
    pub reads: Counter,
    /// WRITE column commands issued.
    pub writes: Counter,
    /// ACTIVATE commands issued.
    pub activates: Counter,
    /// PRECHARGE commands issued.
    pub precharges: Counter,
    /// REFRESH commands issued.
    pub refreshes: Counter,
    /// Column commands that found their row already open.
    pub row_hits: Counter,
    /// Column commands that required row management first.
    pub row_misses: Counter,
    /// Data-bus busy cycles (burst occupancy).
    pub data_bus_busy: Counter,
    /// Cycles observed (for utilization).
    pub cycles: Counter,
    /// End-to-end read latency (memory cycles).
    pub read_latency: RunningMean,
    /// End-to-end write latency (memory cycles).
    pub write_latency: RunningMean,
}

impl SubChannelStats {
    /// Fraction of observed cycles the data bus carried a burst.
    pub fn bus_utilization(&self) -> f64 {
        if self.cycles.get() == 0 {
            0.0
        } else {
            self.data_bus_busy.get() as f64 / self.cycles.get() as f64
        }
    }

    /// Row-buffer hit rate over all column commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits.get() + self.row_misses.get();
        if total == 0 {
            0.0
        } else {
            self.row_hits.get() as f64 / total as f64
        }
    }
}

impl doram_sim::snapshot::Snapshot for SubChannelStats {
    fn save_state(&self, w: &mut doram_sim::snapshot::SnapshotWriter) {
        let SubChannelStats {
            reads,
            writes,
            activates,
            precharges,
            refreshes,
            row_hits,
            row_misses,
            data_bus_busy,
            cycles,
            read_latency,
            write_latency,
        } = self;
        reads.save_state(w);
        writes.save_state(w);
        activates.save_state(w);
        precharges.save_state(w);
        refreshes.save_state(w);
        row_hits.save_state(w);
        row_misses.save_state(w);
        data_bus_busy.save_state(w);
        cycles.save_state(w);
        read_latency.save_state(w);
        write_latency.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut doram_sim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), doram_sim::snapshot::SnapshotError> {
        self.reads.load_state(r)?;
        self.writes.load_state(r)?;
        self.activates.load_state(r)?;
        self.precharges.load_state(r)?;
        self.refreshes.load_state(r)?;
        self.row_hits.load_state(r)?;
        self.row_misses.load_state(r)?;
        self.data_bus_busy.load_state(r)?;
        self.cycles.load_state(r)?;
        self.read_latency.load_state(r)?;
        self.write_latency.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SubChannelStats::default();
        assert_eq!(s.bus_utilization(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
        s.cycles.add(100);
        s.data_bus_busy.add(40);
        s.row_hits.add(3);
        s.row_misses.add(1);
        assert!((s.bus_utilization() - 0.4).abs() < 1e-12);
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}

//! Physical-address decomposition for one sub-channel.
//!
//! The default layout places the column bits lowest (above the 64 B line
//! offset), then bank, then row:
//!
//! ```text
//!   | row ........ | bank (3b) | column (7b) | line offset (6b) |
//! ```
//!
//! so a sequential stream walks an 8 KB row (row-buffer hits), then moves to
//! the same row in the next bank (bank-level parallelism for streams), which
//! is the open-page-friendly mapping USIMM's default scheduler assumes. The
//! ORAM subtree layout (Ren et al. \[32\]) is built on top of this in the
//! `doram-oram` crate by packing subtrees into rows.

/// Decoded coordinates of a line within one sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddress {
    /// Bank index (`0..banks`).
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
    /// Column (line index within the row).
    pub col: u64,
}

/// Maps sub-channel physical addresses to (bank, row, column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapper {
    line_bits: u32,
    col_bits: u32,
    bank_bits: u32,
}

impl AddressMapper {
    /// Creates a mapper.
    ///
    /// * `line_bytes` — cache-line size (64 in the paper).
    /// * `row_bytes` — DRAM row (page) size (8 KB).
    /// * `banks` — banks per rank (8).
    ///
    /// # Panics
    ///
    /// Panics if any parameter is not a power of two or `row_bytes <
    /// line_bytes`.
    pub fn new(line_bytes: u64, row_bytes: u64, banks: usize) -> AddressMapper {
        assert!(line_bytes.is_power_of_two(), "line size must be 2^n");
        assert!(row_bytes.is_power_of_two(), "row size must be 2^n");
        assert!(banks.is_power_of_two(), "bank count must be 2^n");
        assert!(row_bytes >= line_bytes, "row must hold at least one line");
        AddressMapper {
            line_bits: line_bytes.trailing_zeros(),
            col_bits: (row_bytes / line_bytes).trailing_zeros(),
            bank_bits: banks.trailing_zeros(),
        }
    }

    /// The paper's configuration: 64 B lines, 8 KB rows, 8 banks.
    pub fn ddr3_default() -> AddressMapper {
        AddressMapper::new(64, 8192, 8)
    }

    /// Decodes a byte address.
    pub fn decode(&self, addr: u64) -> DecodedAddress {
        let line = addr >> self.line_bits;
        let col = line & ((1 << self.col_bits) - 1);
        let bank = (line >> self.col_bits) & ((1 << self.bank_bits) - 1);
        let row = line >> (self.col_bits + self.bank_bits);
        DecodedAddress {
            bank: bank as usize,
            row,
            col,
        }
    }

    /// Recomposes a byte address from coordinates (inverse of [`decode`]).
    ///
    /// [`decode`]: AddressMapper::decode
    pub fn encode(&self, d: DecodedAddress) -> u64 {
        let line =
            (d.row << (self.col_bits + self.bank_bits)) | ((d.bank as u64) << self.col_bits) | d.col;
        line << self.line_bits
    }

    /// Number of lines per row.
    pub fn lines_per_row(&self) -> u64 {
        1 << self.col_bits
    }

    /// Number of banks addressed.
    pub fn banks(&self) -> usize {
        1 << self.bank_bits
    }

    /// Bytes covered by one row across one bank.
    pub fn row_bytes(&self) -> u64 {
        self.lines_per_row() << self.line_bits
    }
}

impl Default for AddressMapper {
    fn default() -> AddressMapper {
        AddressMapper::ddr3_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_lines_share_a_row() {
        let m = AddressMapper::ddr3_default();
        let a = m.decode(0);
        let b = m.decode(64);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn row_crossing_switches_bank() {
        let m = AddressMapper::ddr3_default();
        let last_in_row = m.decode(8192 - 64);
        let first_next = m.decode(8192);
        assert_eq!(last_in_row.bank, 0);
        assert_eq!(first_next.bank, 1);
        assert_eq!(first_next.row, last_in_row.row);
        assert_eq!(first_next.col, 0);
    }

    #[test]
    fn row_increments_after_all_banks() {
        let m = AddressMapper::ddr3_default();
        let d = m.decode(8192 * 8);
        assert_eq!(d, DecodedAddress { bank: 0, row: 1, col: 0 });
    }

    #[test]
    fn encode_is_inverse_of_decode() {
        let m = AddressMapper::ddr3_default();
        for addr in (0..1 << 22).step_by(64 * 7) {
            let aligned = addr & !63;
            assert_eq!(m.encode(m.decode(aligned)), aligned);
        }
    }

    #[test]
    fn geometry_accessors() {
        let m = AddressMapper::ddr3_default();
        assert_eq!(m.lines_per_row(), 128);
        assert_eq!(m.banks(), 8);
        assert_eq!(m.row_bytes(), 8192);
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn non_power_of_two_rejected() {
        let _ = AddressMapper::new(64, 8192, 6);
    }
}

//! Bandwidth-preallocation arbiter (Cooperative Path ORAM, \[39\]).
//!
//! When the S-App's Path ORAM traffic shares a channel with NS-App traffic,
//! an unconstrained FR-FCFS scheduler lets the ORAM burst monopolize the
//! data bus (it arrives as ~100-deep bursts of row-hitting requests). The
//! cooperative scheme caps the fraction of data-bus slots the ORAM class may
//! take while the other class has work queued; the paper sets the threshold
//! to 50% "so that both kinds of applications have similar slowdown" (§IV).
//!
//! The arbiter accounts column commands over a sliding window and vetoes
//! ORAM column issues that would push its share above the threshold while
//! normal requests are waiting (and vice versa — the cap is symmetric, which
//! is what makes the 50/50 split fair).

use crate::request::RequestClass;

/// Sliding-window share arbiter between [`RequestClass::Oram`] and
/// [`RequestClass::Normal`] traffic.
#[derive(Debug, Clone)]
pub struct ShareArbiter {
    /// Fraction of column slots the ORAM class may take when contended.
    threshold: f64,
    /// Strict ORAM priority (SD-mastered sub-channels): ORAM requests are
    /// always preferred while present; NS traffic rides the
    /// work-conserving valve.
    oram_priority: bool,
    /// Window length in column-command slots.
    window: u32,
    oram_in_window: u32,
    normal_in_window: u32,
    enabled: bool,
}

impl ShareArbiter {
    /// Creates an arbiter with the given ORAM share `threshold` (0..=1) and
    /// accounting `window` (in column commands).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is not within `[0, 1]` or `window` is zero.
    pub fn new(threshold: f64, window: u32) -> ShareArbiter {
        assert!((0.0..=1.0).contains(&threshold), "threshold in [0,1]");
        assert!(window > 0, "window must be positive");
        ShareArbiter {
            threshold,
            window,
            oram_in_window: 0,
            normal_in_window: 0,
            enabled: true,
            oram_priority: false,
        }
    }

    /// An arbiter giving the ORAM class strict priority — the secure
    /// delegator is the master of its own sub-channels and streams path
    /// bursts at full rate; guest NS traffic is served in the gaps (and
    /// through the scheduler's work-conserving starvation valve).
    pub fn oram_priority() -> ShareArbiter {
        ShareArbiter {
            oram_priority: true,
            ..ShareArbiter::new(1.0, 64)
        }
    }

    /// The paper's configuration: 50% threshold.
    pub fn paper_default() -> ShareArbiter {
        ShareArbiter::new(0.5, 64)
    }

    /// An arbiter that never vetoes (plain FR-FCFS).
    pub fn disabled() -> ShareArbiter {
        ShareArbiter {
            threshold: 1.0,
            window: 64,
            oram_in_window: 0,
            normal_in_window: 0,
            enabled: false,
            oram_priority: false,
        }
    }

    /// Length of one ownership epoch, in memory cycles. The pre-allocation
    /// rotates channel ownership at this granularity; the pattern repeats
    /// every four epochs so thresholds are honored in quarters.
    pub const EPOCH_CYCLES: u64 = 64;

    /// Which class *owns* the channel at cycle `now` under bandwidth
    /// pre-allocation, when both classes have pending work.
    ///
    /// `None` means no arbitration (disabled or only one class waiting).
    /// Bandwidth pre-allocation (Cooperative Path ORAM \[39\]) partitions
    /// service *slots* ahead of time: the ORAM burst owns the channel for
    /// `threshold` of the epochs, NS traffic for the rest. Slot ownership
    /// — rather than fine-grained share balancing — is what makes the
    /// secure channel visibly slower for NS-Apps while the SD is streaming
    /// a path (the effect behind Figure 8 and the D-ORAM/c policy).
    ///
    /// Ownership is a *preference*: the scheduler must stay
    /// work-conserving (serve the other class when the owner cannot issue
    /// for a while), otherwise ownership can deadlock against row-buffer
    /// state.
    pub fn preferred_at(
        &self,
        now: doram_sim::MemCycle,
        oram_waiting: bool,
        normal_waiting: bool,
    ) -> Option<RequestClass> {
        if self.oram_priority {
            return oram_waiting.then_some(RequestClass::Oram);
        }
        if !(self.enabled && oram_waiting && normal_waiting) {
            return None;
        }
        let epoch = now.0 / Self::EPOCH_CYCLES;
        let quarter = (epoch % 4) as f64 * 0.25;
        if quarter < self.threshold {
            Some(RequestClass::Oram)
        } else {
            Some(RequestClass::Normal)
        }
    }

    /// Whether a column command of `class` may issue now, given whether the
    /// opposite class currently has queued work.
    pub fn permits(&self, class: RequestClass, other_class_waiting: bool) -> bool {
        if !self.enabled || !other_class_waiting {
            return true;
        }
        let total = (self.oram_in_window + self.normal_in_window).max(1) as f64;
        match class {
            RequestClass::Oram => (self.oram_in_window as f64) / total <= self.threshold,
            RequestClass::Normal => {
                (self.normal_in_window as f64) / total <= 1.0 - self.threshold + f64::EPSILON
            }
        }
    }

    /// Records that a column command of `class` was issued.
    pub fn record(&mut self, class: RequestClass) {
        match class {
            RequestClass::Oram => self.oram_in_window += 1,
            RequestClass::Normal => self.normal_in_window += 1,
        }
        if self.oram_in_window + self.normal_in_window >= self.window {
            // Halve rather than zero so the share estimate carries over.
            self.oram_in_window /= 2;
            self.normal_in_window /= 2;
        }
    }

    /// Current ORAM share of the accounting window (0 when empty).
    pub fn oram_share(&self) -> f64 {
        let total = self.oram_in_window + self.normal_in_window;
        if total == 0 {
            0.0
        } else {
            self.oram_in_window as f64 / total as f64
        }
    }
}

impl doram_sim::snapshot::Snapshot for ShareArbiter {
    fn save_state(&self, w: &mut doram_sim::snapshot::SnapshotWriter) {
        // Threshold/window/mode are configuration; only the sliding-window
        // tallies move during a run.
        let ShareArbiter {
            threshold: _,
            oram_priority: _,
            window: _,
            oram_in_window,
            normal_in_window,
            enabled: _,
        } = self;
        w.put_u32(*oram_in_window);
        w.put_u32(*normal_in_window);
    }

    fn load_state(
        &mut self,
        r: &mut doram_sim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), doram_sim::snapshot::SnapshotError> {
        self.oram_in_window = r.get_u32()?;
        self.normal_in_window = r.get_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_always_permitted() {
        let mut a = ShareArbiter::paper_default();
        for _ in 0..100 {
            assert!(a.permits(RequestClass::Oram, false));
            a.record(RequestClass::Oram);
        }
    }

    #[test]
    fn oram_capped_under_contention() {
        let mut a = ShareArbiter::paper_default();
        // Saturate the window with ORAM issues.
        for _ in 0..40 {
            a.record(RequestClass::Oram);
        }
        assert!(!a.permits(RequestClass::Oram, true));
        assert!(a.permits(RequestClass::Normal, true));
    }

    #[test]
    fn shares_rebalance() {
        let mut a = ShareArbiter::paper_default();
        for _ in 0..40 {
            a.record(RequestClass::Oram);
        }
        for _ in 0..41 {
            a.record(RequestClass::Normal);
        }
        assert!(a.permits(RequestClass::Oram, true));
    }

    #[test]
    fn long_run_converges_to_threshold() {
        // Simulate both classes always waiting, issuing whichever is
        // permitted (ORAM preferred as tie-break, like a greedy burst).
        let mut a = ShareArbiter::new(0.5, 64);
        let mut oram = 0u32;
        let mut normal = 0u32;
        for _ in 0..10_000 {
            if a.permits(RequestClass::Oram, true) {
                a.record(RequestClass::Oram);
                oram += 1;
            } else {
                assert!(a.permits(RequestClass::Normal, true));
                a.record(RequestClass::Normal);
                normal += 1;
            }
        }
        let share = oram as f64 / (oram + normal) as f64;
        assert!((share - 0.5).abs() < 0.05, "share {share}");
    }

    #[test]
    fn asymmetric_threshold() {
        let mut a = ShareArbiter::new(0.25, 64);
        let mut oram = 0u32;
        for _ in 0..10_000 {
            if a.permits(RequestClass::Oram, true) {
                a.record(RequestClass::Oram);
                oram += 1;
            } else {
                a.record(RequestClass::Normal);
            }
        }
        let share = oram as f64 / 10_000.0;
        assert!((share - 0.25).abs() < 0.05, "share {share}");
    }

    #[test]
    fn disabled_never_vetoes() {
        let mut a = ShareArbiter::disabled();
        for _ in 0..100 {
            a.record(RequestClass::Oram);
        }
        assert!(a.permits(RequestClass::Oram, true));
    }

    #[test]
    fn share_accessor() {
        let mut a = ShareArbiter::paper_default();
        assert_eq!(a.oram_share(), 0.0);
        a.record(RequestClass::Oram);
        a.record(RequestClass::Normal);
        assert_eq!(a.oram_share(), 0.5);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let _ = ShareArbiter::new(1.5, 64);
    }
}

//! The sub-channel: queues, FR-FCFS scheduling, channel-level constraints,
//! write drains and refresh.
//!
//! One [`SubChannel`] models one rank of banks behind a shared command bus
//! (one command per tCK) and data bus (one burst at a time, with turnaround
//! gaps between opposite-direction bursts). The scheduler is FR-FCFS:
//! ready row hits first, then the oldest request's row management, the
//! policy USIMM's close-to-baseline configurations use.

use crate::address::AddressMapper;
use crate::arbiter::ShareArbiter;
use crate::bank::Bank;
use crate::conformance::{CommandRecord, DeviceCommand};
use crate::request::{Completion, MemOp, MemRequest, RequestClass};
use crate::stats::SubChannelStats;
use crate::timing::DramTiming;
use doram_sim::MemCycle;
use std::collections::VecDeque;

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave rows open after a column access (FR-FCFS exploits hits); the
    /// policy USIMM's baseline and this paper assume.
    #[default]
    Open,
    /// Auto-precharge after every column access: each access pays tRCD
    /// but never a conflict tRP on the critical path. Better for
    /// row-locality-free traffic; an ablation knob here.
    Closed,
}

/// Configuration of one sub-channel.
#[derive(Debug, Clone)]
pub struct SubChannelConfig {
    /// Device timing constraints.
    pub timing: DramTiming,
    /// Address decomposition.
    pub mapper: AddressMapper,
    /// Read queue capacity.
    pub read_queue: usize,
    /// Write queue capacity.
    pub write_queue: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub drain_high: usize,
    /// Leave write-drain mode at this write-queue occupancy.
    pub drain_low: usize,
    /// Enter write-drain mode when the oldest write has waited this many
    /// cycles, regardless of occupancy (prevents unbounded write
    /// starvation under a steady read stream).
    pub max_write_age: u64,
    /// Bandwidth-preallocation arbiter between ORAM and normal traffic.
    pub arbiter: ShareArbiter,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl Default for SubChannelConfig {
    fn default() -> SubChannelConfig {
        SubChannelConfig {
            timing: DramTiming::ddr3_1600(),
            mapper: AddressMapper::ddr3_default(),
            read_queue: 32,
            write_queue: 32,
            drain_high: 24,
            drain_low: 8,
            max_write_age: 300,
            arbiter: ShareArbiter::disabled(),
            page_policy: PagePolicy::Open,
        }
    }
}

/// A queued request with its decoded coordinates.
#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemRequest,
    bank: usize,
    row: u64,
    col: u64,
    /// Set once row management was performed on this request's behalf; used
    /// for row-hit accounting.
    managed: bool,
    /// Interference blame class ([`doram_obs::BlameClass`] tag).
    blame: u8,
    /// Cycle the request entered the queue (wait = issue − enq).
    enq: u64,
    /// The resource's per-class busy prefix at enqueue time; settling
    /// differences the current prefix against this.
    busy_snap: [u64; doram_obs::BLAME_CLASSES],
}

/// An issued column command waiting for its data burst to finish.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    req: MemRequest,
    finish: MemCycle,
    /// Blame class tag carried through to service-latency recording.
    blame: u8,
}

/// One rank of DRAM banks with scheduler and buses. See the
/// [crate docs](crate) for the role it plays.
#[derive(Debug, Clone)]
pub struct SubChannel {
    cfg: SubChannelConfig,
    banks: Vec<Bank>,
    read_q: VecDeque<Pending>,
    write_q: VecDeque<Pending>,
    in_flight: Vec<InFlight>,
    stats: SubChannelStats,
    // Channel-level timing state.
    data_busy_until: MemCycle,
    last_burst_op: Option<MemOp>,
    last_burst_end: MemCycle,
    last_write_data_end: MemCycle,
    next_col_allowed: MemCycle,
    last_act: Option<MemCycle>,
    recent_acts: VecDeque<MemCycle>,
    // Refresh state machine.
    next_refresh_due: MemCycle,
    refreshing_until: Option<MemCycle>,
    refresh_pending: bool,
    // Write drain mode.
    draining: bool,
    /// Banks awaiting an auto-precharge (closed-page policy).
    auto_precharge: Vec<usize>,
    /// Opt-in device-command trace for conformance checking.
    command_trace: Option<Vec<CommandRecord>>,
    /// Consecutive cycles with queued work but no column issued; drives
    /// the work-conserving fallback past the epoch owner.
    stall_cycles: u64,
    /// Trace recorder plus this sub-channel's index in the trace; `None`
    /// (the default) keeps the hot path silent.
    obs: Option<(doram_obs::SharedRecorder, u64)>,
    /// This sub-channel's row in the recorder's blame matrix, registered
    /// at `set_obs` time. `None` whenever blame attribution is off (no
    /// recorder, or the filter excludes the DRAM subsystem), which keeps
    /// the per-tick cost at one branch.
    blame_res: Option<usize>,
    /// Blame class tag of the burst currently owning the data bus.
    last_burst_blame: u8,
}

impl SubChannel {
    /// Creates a sub-channel.
    ///
    /// # Panics
    ///
    /// Panics if the timing parameters are inconsistent (see
    /// [`DramTiming::validate`]) or the drain watermarks are inverted.
    pub fn new(cfg: SubChannelConfig) -> SubChannel {
        cfg.timing.validate().expect("invalid DRAM timing");
        assert!(
            cfg.drain_low < cfg.drain_high && cfg.drain_high <= cfg.write_queue,
            "watermarks must satisfy low < high <= capacity"
        );
        let banks = vec![Bank::new(); cfg.mapper.banks()];
        let t_refi = cfg.timing.t_refi;
        SubChannel {
            cfg,
            banks,
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            in_flight: Vec::new(),
            stats: SubChannelStats::default(),
            data_busy_until: MemCycle::ZERO,
            last_burst_op: None,
            last_burst_end: MemCycle::ZERO,
            last_write_data_end: MemCycle::ZERO,
            next_col_allowed: MemCycle::ZERO,
            last_act: None,
            recent_acts: VecDeque::new(),
            next_refresh_due: MemCycle(t_refi),
            refreshing_until: None,
            refresh_pending: false,
            draining: false,
            auto_precharge: Vec::new(),
            command_trace: None,
            stall_cycles: 0,
            obs: None,
            blame_res: None,
            last_burst_blame: doram_obs::BlameClass::NsApp as u8,
        }
    }

    /// Attaches (or detaches) a trace recorder; ORAM-class requests emit
    /// `dram_issue`/`dram_done` events tagged with `sub_idx`, and (when
    /// the DRAM subsystem passes the filter) queue waits are attributed
    /// in the blame matrix under the resource name `sd.sub{sub_idx}`.
    pub fn set_obs(&mut self, rec: Option<doram_obs::SharedRecorder>, sub_idx: u64) {
        let name = format!("sd.sub{sub_idx}");
        self.set_obs_named(rec, sub_idx, &name);
    }

    /// Like [`set_obs`], but registering the blame-matrix row under an
    /// explicit `resource` name (normal BOB channels use `ch{i}.sub{j}`).
    ///
    /// [`set_obs`]: SubChannel::set_obs
    pub fn set_obs_named(
        &mut self,
        rec: Option<doram_obs::SharedRecorder>,
        sub_idx: u64,
        resource: &str,
    ) {
        self.blame_res = rec.as_ref().and_then(|r| {
            let mut r = r.borrow_mut();
            r.wants(doram_obs::Subsystem::Dram)
                .then(|| r.blame.resource(resource))
        });
        self.obs = rec.map(|r| (r, sub_idx));
    }

    /// Starts recording every device command for post-hoc JEDEC
    /// conformance checking (see [`crate::conformance`]).
    pub fn enable_command_trace(&mut self) {
        self.command_trace = Some(Vec::new());
    }

    /// Takes the recorded command trace (empty if tracing was never
    /// enabled).
    pub fn take_command_trace(&mut self) -> Vec<CommandRecord> {
        self.command_trace.take().unwrap_or_default()
    }

    fn record_command(&mut self, cycle: MemCycle, command: DeviceCommand, bank: usize, row: u64) {
        if let Some(trace) = self.command_trace.as_mut() {
            trace.push(CommandRecord {
                cycle: cycle.0,
                command,
                bank,
                row,
            });
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SubChannelStats {
        &self.stats
    }

    /// One-line internal state summary for debugging.
    pub fn debug_state(&self) -> String {
        format!(
            "rq={} wq={} fly={} drain={} refresh_pending={} refreshing={} rd={} wr={}",
            self.read_q.len(),
            self.write_q.len(),
            self.in_flight.len(),
            self.draining,
            self.refresh_pending,
            self.refreshing_until.is_some(),
            self.stats.reads.get(),
            self.stats.writes.get(),
        )
    }

    /// Number of queued (not yet issued) requests.
    pub fn queued(&self) -> usize {
        self.read_q.len() + self.write_q.len()
    }

    /// Whether any request of `class` is queued.
    pub fn has_queued_class(&self, class: RequestClass) -> bool {
        self.read_q.iter().chain(self.write_q.iter()).any(|p| p.req.class == class)
    }

    /// Whether the sub-channel has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty() && self.in_flight.is_empty()
    }

    /// Whether a read can currently be accepted.
    pub fn can_accept_read(&self) -> bool {
        self.read_q.len() < self.cfg.read_queue
    }

    /// Whether a write can currently be accepted.
    pub fn can_accept_write(&self) -> bool {
        self.write_q.len() < self.cfg.write_queue
    }

    /// Blame class a request maps to absent an explicit tag: normal
    /// traffic is the NS-App co-runner; ORAM reads are the S-App's
    /// latency-critical path, ORAM writes its background writebacks.
    pub fn blame_class_of(req: &MemRequest) -> doram_obs::BlameClass {
        match (req.class, req.op) {
            (RequestClass::Normal, _) => doram_obs::BlameClass::NsApp,
            (RequestClass::Oram, MemOp::Read) => doram_obs::BlameClass::SAppRead,
            (RequestClass::Oram, MemOp::Write) => doram_obs::BlameClass::SAppWriteback,
        }
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns the request back when the corresponding queue is full, so the
    /// issuer can model back-pressure.
    pub fn enqueue(&mut self, req: MemRequest) -> Result<(), MemRequest> {
        let blame = Self::blame_class_of(&req) as u8;
        self.enqueue_tagged(req, blame)
    }

    /// Enqueues a request under an explicit blame class tag: the secure
    /// channel uses this to mark scrub/rebuild reads ([`ScrubParity`])
    /// and detection-triggered refetches ([`IntegrityVerify`]) that are
    /// indistinguishable from ordinary ORAM traffic at this layer.
    ///
    /// # Errors
    ///
    /// Returns the request back when the corresponding queue is full.
    ///
    /// [`ScrubParity`]: doram_obs::BlameClass::ScrubParity
    /// [`IntegrityVerify`]: doram_obs::BlameClass::IntegrityVerify
    pub fn enqueue_tagged(&mut self, req: MemRequest, blame: u8) -> Result<(), MemRequest> {
        let full = match req.op {
            MemOp::Read => self.read_q.len() >= self.cfg.read_queue,
            MemOp::Write => self.write_q.len() >= self.cfg.write_queue,
        };
        if full {
            return Err(req);
        }
        let d = self.cfg.mapper.decode(req.addr);
        let busy_snap = match (self.blame_res, &self.obs) {
            (Some(res), Some((rec, _))) => rec.borrow().blame.busy_snapshot(res),
            _ => [0; doram_obs::BLAME_CLASSES],
        };
        let p = Pending {
            req,
            bank: d.bank,
            row: d.row,
            col: d.col,
            managed: false,
            blame,
            enq: req.arrival.0,
            busy_snap,
        };
        match req.op {
            MemOp::Read => self.read_q.push_back(p),
            MemOp::Write => self.write_q.push_back(p),
        }
        if req.class == RequestClass::Oram {
            if let Some((rec, sub_idx)) = &self.obs {
                rec.borrow_mut().dram_issue(req.arrival.0, *sub_idx);
            }
        }
        Ok(())
    }

    /// Advances the sub-channel by one memory cycle, appending any requests
    /// whose data burst finished this cycle to `completed`.
    pub fn tick(&mut self, now: MemCycle, completed: &mut Vec<Completion>) {
        self.stats.cycles.inc();
        if self.data_busy_until > now {
            self.stats.data_bus_busy.inc();
        }
        // Advance the blame busy prefix for the *previous* cycle: the data
        // bus was busy during cycle `now − 1` iff a burst finishes at or
        // after `now`. Waiters snapshot this prefix on enqueue and settle
        // against it on issue; settling clamps, so the ±1-cycle overlap at
        // the boundary can never over-attribute.
        if let Some(res) = self.blame_res {
            if self.last_burst_op.is_some() && self.data_busy_until >= now {
                if let Some((rec, _)) = &self.obs {
                    rec.borrow_mut().blame.busy_cycle(
                        res,
                        doram_obs::BlameClass::from_tag(self.last_burst_blame),
                    );
                }
            }
        }

        // Retire finished bursts.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].finish <= now {
                let f = self.in_flight.swap_remove(i);
                let lat = (f.finish.0 - f.req.arrival.0) as f64;
                match f.req.op {
                    MemOp::Read => self.stats.read_latency.record(lat),
                    MemOp::Write => self.stats.write_latency.record(lat),
                }
                if let Some((rec, sub_idx)) = &self.obs {
                    let mut rec = rec.borrow_mut();
                    if f.req.class == RequestClass::Oram {
                        rec.dram_done(f.finish.0, *sub_idx);
                    }
                    if self.blame_res.is_some() {
                        rec.class_latency(
                            doram_obs::BlameClass::from_tag(f.blame),
                            f.finish.0.saturating_sub(f.req.arrival.0),
                        );
                    }
                }
                completed.push(Completion {
                    request: f.req,
                    finished: f.finish,
                });
            } else {
                i += 1;
            }
        }

        // Refresh state machine.
        if let Some(until) = self.refreshing_until {
            if now < until {
                return; // tRFC: no commands.
            }
            self.refreshing_until = None;
        }
        if now >= self.next_refresh_due {
            self.refresh_pending = true;
        }
        if self.refresh_pending {
            // Close banks one PRE per cycle, then refresh.
            if self.banks.iter().all(|b| b.open_row().is_none()) {
                let end = now + MemCycle(self.cfg.timing.t_rfc);
                for b in self.banks.iter_mut() {
                    b.block_until(end);
                }
                self.refreshing_until = Some(end);
                self.next_refresh_due += MemCycle(self.cfg.timing.t_refi);
                self.refresh_pending = false;
                self.stats.refreshes.inc();
                self.record_command(now, DeviceCommand::Refresh, 0, 0);
            } else if let Some(bank) = self
                .banks
                .iter()
                .position(|b| b.can_precharge(now))
            {
                let row = self.banks[bank].open_row().expect("precharging an open row");
                self.banks[bank].precharge(now, &self.cfg.timing);
                self.stats.precharges.inc();
                self.record_command(now, DeviceCommand::Precharge, bank, row);
            }
            return;
        }

        // Closed-page: issue pending auto-precharges as they become legal
        // (they use bank-command slots but never block the column path).
        if !self.auto_precharge.is_empty() {
            let mut i = 0;
            while i < self.auto_precharge.len() {
                let bank = self.auto_precharge[i];
                if self.banks[bank].open_row().is_none() {
                    self.auto_precharge.swap_remove(i);
                } else if self.banks[bank].can_precharge(now) {
                    let row = self.banks[bank].open_row().expect("open row checked");
                    self.banks[bank].precharge(now, &self.cfg.timing);
                    self.stats.precharges.inc();
                    self.record_command(now, DeviceCommand::Precharge, bank, row);
                    self.auto_precharge.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }

        // Write-drain mode hysteresis, with an aging override so writes
        // cannot starve behind a steady read stream.
        let oldest_write_aged = self
            .write_q
            .front()
            .is_some_and(|p| now.0.saturating_sub(p.req.arrival.0) > self.cfg.max_write_age);
        if self.write_q.len() >= self.cfg.drain_high
            || (self.read_q.is_empty() && !self.write_q.is_empty())
            || oldest_write_aged
        {
            self.draining = true;
        }
        if self.draining && (self.write_q.len() <= self.cfg.drain_low && !self.read_q.is_empty()) {
            self.draining = false;
        }
        if self.write_q.is_empty() {
            self.draining = false;
        }

        let issued_before = self.stats.reads.get() + self.stats.writes.get();
        self.schedule(now);
        let issued_after = self.stats.reads.get() + self.stats.writes.get();
        if issued_after > issued_before || (self.read_q.is_empty() && self.write_q.is_empty()) {
            self.stall_cycles = 0;
        } else {
            self.stall_cycles += 1;
        }
    }

    /// Issues at most one DRAM command for this cycle.
    fn schedule(&mut self, now: MemCycle) {
        let serve_writes = self.draining;
        // Bandwidth preallocation is a *preference* over which class's
        // ready requests are served first, computed from the classes
        // present in the active queue. It must stay work-conserving: a
        // hard veto can deadlock against row-buffer state (a starved
        // request pinning a row everyone else needs).
        let preferred = {
            let queue = if serve_writes { &self.write_q } else { &self.read_q };
            let oram_waiting = queue.iter().any(|p| p.req.class == RequestClass::Oram);
            let normal_waiting = queue.iter().any(|p| p.req.class == RequestClass::Normal);
            self.cfg.arbiter.preferred_at(now, oram_waiting, normal_waiting)
        };

        // Pass 1: first ready row hit in the active queue (FR part). The
        // epoch owner's requests are served; the other class only issues
        // when the owner has been unable to make progress for a while
        // (work-conserving valve — a strict veto can deadlock against
        // row-buffer state).
        let starved = self.stall_cycles > 2 * self.cfg.timing.t_rc;
        let hit_idx = {
            let queue = if serve_writes { &self.write_q } else { &self.read_q };
            let ready = |p: &Pending| {
                self.banks[p.bank].can_column(p.row, now) && self.column_allowed(p.req.op, now)
            };
            match preferred {
                Some(class) if !starved => queue
                    .iter()
                    .position(|p| p.req.class == class && ready(p)),
                _ => queue.iter().position(ready),
            }
        };
        if let Some(idx) = hit_idx {
            let p = if serve_writes {
                self.write_q.remove(idx).expect("index valid")
            } else {
                self.read_q.remove(idx).expect("index valid")
            };
            self.issue_column(p, now);
            return;
        }

        // Pass 2: row management for the oldest serviceable request (FCFS
        // part), visiting the preferred class's requests first. The first
        // request whose bank can make progress gets it.
        let t = self.cfg.timing;
        let order: Vec<usize> = {
            let queue = if serve_writes { &self.write_q } else { &self.read_q };
            match preferred {
                Some(class) => {
                    let (pref, rest): (Vec<usize>, Vec<usize>) =
                        (0..queue.len()).partition(|&i| queue[i].req.class == class);
                    pref.into_iter().chain(rest).collect()
                }
                None => (0..queue.len()).collect(),
            }
        };
        for i in order {
            let (bank_idx, row) = {
                let p = if serve_writes {
                    &self.write_q[i]
                } else {
                    &self.read_q[i]
                };
                (p.bank, p.row)
            };
            match self.banks[bank_idx].open_row() {
                Some(open) if open == row => continue, // waits on tRCD/tCCD/bus
                Some(open) => {
                    // Conflict: precharge, unless a request in the
                    // *currently served* queue still wants the open row
                    // (keep it open — FR-FCFS). Only the active queue
                    // counts: honoring the idle queue's row wishes can
                    // deadlock (the write would pin a row that read
                    // service never releases).
                    let active: &VecDeque<Pending> = if serve_writes {
                        &self.write_q
                    } else {
                        &self.read_q
                    };
                    let hit_wanted = active.iter().any(|q| q.bank == bank_idx && q.row == open);
                    if !hit_wanted && self.banks[bank_idx].can_precharge(now) {
                        self.banks[bank_idx].precharge(now, &t);
                        self.stats.precharges.inc();
                        self.record_command(now, DeviceCommand::Precharge, bank_idx, open);
                        self.mark_managed(serve_writes, i);
                        return;
                    }
                }
                None => {
                    if self.banks[bank_idx].can_activate(now) && self.activate_allowed(now) {
                        self.banks[bank_idx].activate(row, now, &t);
                        self.note_activate(now);
                        self.stats.activates.inc();
                        self.record_command(now, DeviceCommand::Activate, bank_idx, row);
                        self.mark_managed(serve_writes, i);
                        return;
                    }
                }
            }
        }
    }

    fn mark_managed(&mut self, serve_writes: bool, i: usize) {
        if serve_writes {
            self.write_q[i].managed = true;
        } else {
            self.read_q[i].managed = true;
        }
    }

    /// Channel-level legality of a column command of direction `op` at `now`.
    fn column_allowed(&self, op: MemOp, now: MemCycle) -> bool {
        if now < self.next_col_allowed {
            return false;
        }
        let t = &self.cfg.timing;
        let start = match op {
            MemOp::Read => now + MemCycle(t.cl),
            MemOp::Write => now + MemCycle(t.cwl),
        };
        // Data bus must be free, with a turnaround gap on direction change.
        let needed = if self.last_burst_op.is_some() && self.last_burst_op != Some(op) {
            self.last_burst_end + MemCycle(t.t_rtrs)
        } else {
            self.data_busy_until
        };
        if start < needed.max(self.data_busy_until) {
            return false;
        }
        // Write-to-read: tWTR from end of write data to READ command.
        if op == MemOp::Read && now < self.last_write_data_end + MemCycle(t.t_wtr) {
            return false;
        }
        true
    }

    /// Channel-level legality of an ACTIVATE at `now` (tRRD + tFAW).
    fn activate_allowed(&self, now: MemCycle) -> bool {
        let t = &self.cfg.timing;
        if let Some(last) = self.last_act {
            if now < last + MemCycle(t.t_rrd) {
                return false;
            }
        }
        // An ACT at cycle a occupies the window [a, a + tFAW).
        let in_window = self
            .recent_acts
            .iter()
            .filter(|&&a| a.0 + t.t_faw > now.0)
            .count();
        in_window < 4
    }

    fn note_activate(&mut self, now: MemCycle) {
        self.last_act = Some(now);
        self.recent_acts.push_back(now);
        while self.recent_acts.len() > 4 {
            self.recent_acts.pop_front();
        }
    }

    /// Issues a READ or WRITE column command for `p` at `now`.
    fn issue_column(&mut self, p: Pending, now: MemCycle) {
        // Settle the request's queueing wait: busy cycles observed since
        // its enqueue snapshot are blamed on the occupying classes, the
        // idle remainder (bank timing, refresh) on its own class.
        if let Some(res) = self.blame_res {
            if let Some((rec, _)) = &self.obs {
                rec.borrow_mut().blame.settle(
                    res,
                    doram_obs::BlameClass::from_tag(p.blame),
                    now.0.saturating_sub(p.enq),
                    &p.busy_snap,
                );
            }
        }
        let t = self.cfg.timing;
        let (start, op) = match p.req.op {
            MemOp::Read => (now + MemCycle(t.cl), MemOp::Read),
            MemOp::Write => (now + MemCycle(t.cwl), MemOp::Write),
        };
        let finish = start + MemCycle(t.t_burst);
        match op {
            MemOp::Read => {
                self.banks[p.bank].read(now, &t);
                self.stats.reads.inc();
                self.record_command(now, DeviceCommand::Read, p.bank, p.row);
            }
            MemOp::Write => {
                self.banks[p.bank].write(now, &t);
                self.stats.writes.inc();
                self.last_write_data_end = finish;
                self.record_command(now, DeviceCommand::Write, p.bank, p.row);
            }
        }
        if self.cfg.page_policy == PagePolicy::Closed {
            // Auto-precharge: close the row unless another queued request
            // still wants it (a mini "hit streak" exception that keeps the
            // policy from thrashing obvious spatial locality).
            let wanted = self
                .read_q
                .iter()
                .chain(self.write_q.iter())
                .any(|q| q.bank == p.bank && q.row == p.row);
            if !wanted {
                self.auto_precharge.push(p.bank);
            }
        }
        if p.managed {
            self.stats.row_misses.inc();
        } else {
            self.stats.row_hits.inc();
        }
        self.cfg.arbiter.record(p.req.class);
        self.next_col_allowed = now + MemCycle(t.t_ccd);
        self.data_busy_until = finish;
        self.last_burst_op = Some(op);
        self.last_burst_end = finish;
        self.last_burst_blame = p.blame;
        self.in_flight.push(InFlight {
            req: p.req,
            finish,
            blame: p.blame,
        });
        let _ = p.col; // column index participates only through the mapper
    }
}

fn put_pending(w: &mut doram_sim::snapshot::SnapshotWriter, p: &Pending) {
    let Pending {
        req,
        bank,
        row,
        col,
        managed,
        blame,
        enq,
        busy_snap,
    } = p;
    crate::request::put_mem_request(w, req);
    w.put_usize(*bank);
    w.put_u64(*row);
    w.put_u64(*col);
    w.put_bool(*managed);
    w.put_u8(*blame);
    w.put_u64(*enq);
    for &v in busy_snap {
        w.put_u64(v);
    }
}

fn get_pending(
    r: &mut doram_sim::snapshot::SnapshotReader<'_>,
) -> Result<Pending, doram_sim::snapshot::SnapshotError> {
    let mut p = Pending {
        req: crate::request::get_mem_request(r)?,
        bank: r.get_usize()?,
        row: r.get_u64()?,
        col: r.get_u64()?,
        managed: r.get_bool()?,
        blame: r.get_u8()?,
        enq: r.get_u64()?,
        busy_snap: [0; doram_obs::BLAME_CLASSES],
    };
    for v in p.busy_snap.iter_mut() {
        *v = r.get_u64()?;
    }
    Ok(p)
}

impl doram_sim::snapshot::Snapshot for SubChannel {
    fn save_state(&self, w: &mut doram_sim::snapshot::SnapshotWriter) {
        // `cfg` is configuration except for the arbiter's sliding-window
        // tallies, which mutate as columns issue. The command trace is an
        // opt-in debugging aid excluded from checkpoints.
        let SubChannel {
            cfg,
            banks,
            read_q,
            write_q,
            in_flight,
            stats,
            data_busy_until,
            last_burst_op,
            last_burst_end,
            last_write_data_end,
            next_col_allowed,
            last_act,
            recent_acts,
            next_refresh_due,
            refreshing_until,
            refresh_pending,
            draining,
            auto_precharge,
            command_trace: _,
            stall_cycles,
            obs: _,       // re-wired by the host after restore
            blame_res: _, // re-registered by set_obs after restore
            last_burst_blame,
        } = self;
        cfg.arbiter.save_state(w);
        w.put_usize(banks.len());
        for b in banks {
            b.save_state(w);
        }
        w.put_usize(read_q.len());
        for p in read_q {
            put_pending(w, p);
        }
        w.put_usize(write_q.len());
        for p in write_q {
            put_pending(w, p);
        }
        // `in_flight` retires via swap_remove, so element order is part of
        // the schedule — serialize in current order.
        w.put_usize(in_flight.len());
        for f in in_flight {
            let InFlight { req, finish, blame } = f;
            crate::request::put_mem_request(w, req);
            w.put_u64(finish.0);
            w.put_u8(*blame);
        }
        stats.save_state(w);
        w.put_u64(data_busy_until.0);
        match last_burst_op {
            None => w.put_bool(false),
            Some(op) => {
                w.put_bool(true);
                crate::request::put_mem_op(w, *op);
            }
        }
        w.put_u64(last_burst_end.0);
        w.put_u64(last_write_data_end.0);
        w.put_u64(next_col_allowed.0);
        match last_act {
            None => w.put_bool(false),
            Some(c) => {
                w.put_bool(true);
                w.put_u64(c.0);
            }
        }
        w.put_usize(recent_acts.len());
        for c in recent_acts {
            w.put_u64(c.0);
        }
        w.put_u64(next_refresh_due.0);
        match refreshing_until {
            None => w.put_bool(false),
            Some(c) => {
                w.put_bool(true);
                w.put_u64(c.0);
            }
        }
        w.put_bool(*refresh_pending);
        w.put_bool(*draining);
        w.put_usize(auto_precharge.len());
        for &bank in auto_precharge {
            w.put_usize(bank);
        }
        w.put_u64(*stall_cycles);
        w.put_u8(*last_burst_blame);
    }

    fn load_state(
        &mut self,
        r: &mut doram_sim::snapshot::SnapshotReader<'_>,
    ) -> Result<(), doram_sim::snapshot::SnapshotError> {
        use doram_sim::snapshot::SnapshotError;
        self.cfg.arbiter.load_state(r)?;
        let banks = r.get_usize()?;
        if banks != self.banks.len() {
            return Err(SnapshotError::new(format!(
                "bank count mismatch: snapshot {banks}, target {}",
                self.banks.len()
            )));
        }
        for b in &mut self.banks {
            b.load_state(r)?;
        }
        self.read_q.clear();
        for _ in 0..r.get_usize()? {
            self.read_q.push_back(get_pending(r)?);
        }
        self.write_q.clear();
        for _ in 0..r.get_usize()? {
            self.write_q.push_back(get_pending(r)?);
        }
        self.in_flight.clear();
        for _ in 0..r.get_usize()? {
            let req = crate::request::get_mem_request(r)?;
            let finish = MemCycle(r.get_u64()?);
            let blame = r.get_u8()?;
            self.in_flight.push(InFlight { req, finish, blame });
        }
        self.stats.load_state(r)?;
        self.data_busy_until = MemCycle(r.get_u64()?);
        self.last_burst_op = if r.get_bool()? {
            Some(crate::request::get_mem_op(r)?)
        } else {
            None
        };
        self.last_burst_end = MemCycle(r.get_u64()?);
        self.last_write_data_end = MemCycle(r.get_u64()?);
        self.next_col_allowed = MemCycle(r.get_u64()?);
        self.last_act = if r.get_bool()? {
            Some(MemCycle(r.get_u64()?))
        } else {
            None
        };
        self.recent_acts.clear();
        for _ in 0..r.get_usize()? {
            self.recent_acts.push_back(MemCycle(r.get_u64()?));
        }
        self.next_refresh_due = MemCycle(r.get_u64()?);
        self.refreshing_until = if r.get_bool()? {
            Some(MemCycle(r.get_u64()?))
        } else {
            None
        };
        self.refresh_pending = r.get_bool()?;
        self.draining = r.get_bool()?;
        self.auto_precharge.clear();
        for _ in 0..r.get_usize()? {
            self.auto_precharge.push(r.get_usize()?);
        }
        self.stall_cycles = r.get_u64()?;
        self.last_burst_blame = r.get_u8()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doram_sim::{AppId, RequestId};

    fn req(id: u64, op: MemOp, addr: u64, arrival: u64) -> MemRequest {
        MemRequest {
            id: RequestId(id),
            app: AppId(0),
            op,
            addr,
            class: RequestClass::Normal,
            arrival: MemCycle(arrival),
        }
    }

    fn run_until_n(sc: &mut SubChannel, n: usize, limit: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        let mut now = MemCycle(0);
        while done.len() < n && now.0 < limit {
            sc.tick(now, &mut done);
            now += MemCycle(1);
        }
        assert!(done.len() >= n, "only {} of {n} completed by {limit}", done.len());
        done
    }

    #[test]
    fn single_read_latency_is_row_miss_path() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        let done = run_until_n(&mut sc, 1, 1000);
        // ACT@0 + tRCD(11) → RD@11 + CL(11) + burst(4) = 26.
        assert_eq!(done[0].finished, MemCycle(26));
        assert_eq!(sc.stats().activates.get(), 1);
        assert_eq!(sc.stats().row_misses.get(), 1);
    }

    #[test]
    fn row_hit_follows_quickly() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        sc.enqueue(req(1, MemOp::Read, 64, 0)).unwrap();
        let done = run_until_n(&mut sc, 2, 1000);
        // Second read: tCCD after the first → RD@15, data at 15+11+4 = 30.
        assert_eq!(done[1].finished, MemCycle(30));
        assert_eq!(sc.stats().row_hits.get(), 1);
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        // Same bank (bank 0), different rows: rows are 64 KB apart.
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        sc.enqueue(req(1, MemOp::Read, 65536, 0)).unwrap();
        let done = run_until_n(&mut sc, 2, 2000);
        // Second read must wait ~tRAS + tRP + tRCD + CL + burst.
        assert!(done[1].finished.0 >= 28 + 11 + 11 + 11 + 4);
        assert_eq!(sc.stats().precharges.get(), 1);
    }

    #[test]
    fn bank_parallelism_overlaps_activates() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        // Two different banks (8 KB apart with the default mapper).
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        sc.enqueue(req(1, MemOp::Read, 8192, 0)).unwrap();
        let done = run_until_n(&mut sc, 2, 1000);
        // Serial would be ~52; overlapped ACTs finish well under 40.
        assert!(done[1].finished.0 < 40, "finish {}", done[1].finished.0);
    }

    #[test]
    fn writes_complete_and_report_latency() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        sc.enqueue(req(0, MemOp::Write, 0, 0)).unwrap();
        let done = run_until_n(&mut sc, 1, 1000);
        assert_eq!(done[0].request.op, MemOp::Write);
        // ACT@0 + tRCD → WR@11 + CWL(8) + burst(4) = 23.
        assert_eq!(done[0].finished, MemCycle(23));
        assert!(sc.stats().write_latency.count() == 1);
    }

    #[test]
    fn reads_have_priority_until_drain_watermark() {
        let cfg = SubChannelConfig {
            drain_high: 4,
            drain_low: 1,
            ..SubChannelConfig::default()
        };
        let mut sc = SubChannel::new(cfg);
        // 3 writes below the watermark + 2 reads: reads finish first.
        for i in 0..3 {
            sc.enqueue(req(i, MemOp::Write, 64 * i, 0)).unwrap();
        }
        sc.enqueue(req(10, MemOp::Read, 64 * 50, 0)).unwrap();
        sc.enqueue(req(11, MemOp::Read, 64 * 51, 0)).unwrap();
        let done = run_until_n(&mut sc, 5, 4000);
        let first_two: Vec<_> = done.iter().take(2).map(|c| c.request.id.0).collect();
        assert_eq!(first_two, vec![10, 11]);
    }

    #[test]
    fn drain_mode_services_writes_when_reads_absent() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        for i in 0..8 {
            sc.enqueue(req(i, MemOp::Write, 64 * i, 0)).unwrap();
        }
        let done = run_until_n(&mut sc, 8, 4000);
        assert_eq!(done.len(), 8);
    }

    #[test]
    fn queue_backpressure() {
        let cfg = SubChannelConfig {
            read_queue: 2,
            ..SubChannelConfig::default()
        };
        let mut sc = SubChannel::new(cfg);
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        sc.enqueue(req(1, MemOp::Read, 64, 0)).unwrap();
        assert!(!sc.can_accept_read());
        assert!(sc.enqueue(req(2, MemOp::Read, 128, 0)).is_err());
        assert!(sc.can_accept_write());
    }

    #[test]
    fn refresh_blocks_and_resumes() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        let mut done = Vec::new();
        // Run across the first tREFI boundary with steady traffic.
        let mut next_addr = 0u64;
        let mut id = 0u64;
        for c in 0..8000u64 {
            if c % 40 == 0 && sc.can_accept_read() {
                let _ = sc.enqueue(req(id, MemOp::Read, next_addr, c));
                id += 1;
                next_addr += 64;
            }
            sc.tick(MemCycle(c), &mut done);
        }
        assert!(sc.stats().refreshes.get() >= 1, "refresh must have run");
        assert!(done.len() as u64 >= id - 5, "traffic keeps flowing after refresh");
    }

    #[test]
    fn tfaw_limits_activate_burst() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        // 6 different banks: the 5th ACT must wait for the tFAW window.
        for i in 0..6 {
            sc.enqueue(req(i, MemOp::Read, 8192 * i, 0)).unwrap();
        }
        let mut done = Vec::new();
        let mut acts_in_window = 0;
        for c in 0..200u64 {
            sc.tick(MemCycle(c), &mut done);
            if c == 23 {
                // The window [0, 24) may hold at most four ACTs.
                acts_in_window = sc.stats().activates.get();
            }
        }
        assert!(acts_in_window <= 4, "{acts_in_window} ACTs within tFAW window");
        assert!(
            sc.stats().activates.get() >= 5,
            "later ACTs proceed once the window slides"
        );
        assert_eq!(done.len(), 6);
    }

    #[test]
    fn oram_class_capped_when_sharing() {
        let cfg = SubChannelConfig {
            arbiter: ShareArbiter::paper_default(),
            ..SubChannelConfig::default()
        };
        let mut sc = SubChannel::new(cfg);
        let mut done = Vec::new();
        let mut id = 0u64;
        let mut oram_addr = 0u64;
        let mut norm_addr = 1 << 30;
        // Keep both classes' queues topped up; measure service mix.
        for c in 0..30_000u64 {
            while sc.read_q.len() < 16 {
                let (class, addr) = if id.is_multiple_of(2) {
                    oram_addr += 64;
                    (RequestClass::Oram, oram_addr)
                } else {
                    norm_addr += 64;
                    (RequestClass::Normal, norm_addr)
                };
                let mut r = req(id, MemOp::Read, addr, c);
                r.class = class;
                sc.enqueue(r).unwrap();
                id += 1;
            }
            sc.tick(MemCycle(c), &mut done);
        }
        let oram = done
            .iter()
            .filter(|d| d.request.class == RequestClass::Oram)
            .count() as f64;
        let share = oram / done.len() as f64;
        assert!(
            (share - 0.5).abs() < 0.12,
            "ORAM share {share} should be near the 50% threshold"
        );
    }

    #[test]
    fn is_idle_reflects_state() {
        let mut sc = SubChannel::new(SubChannelConfig::default());
        assert!(sc.is_idle());
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        assert!(!sc.is_idle());
        assert!(sc.has_queued_class(RequestClass::Normal));
        assert!(!sc.has_queued_class(RequestClass::Oram));
        run_until_n(&mut sc, 1, 1000);
    }

    #[test]
    fn closed_page_precharges_after_isolated_access() {
        let cfg = SubChannelConfig {
            page_policy: PagePolicy::Closed,
            ..SubChannelConfig::default()
        };
        let mut sc = SubChannel::new(cfg);
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        let mut done = Vec::new();
        for c in 0..200u64 {
            sc.tick(MemCycle(c), &mut done);
        }
        assert_eq!(done.len(), 1);
        assert_eq!(sc.stats().precharges.get(), 1, "auto-precharge issued");
        // A later access to a *different* row in the same bank pays only
        // tRCD (bank already closed), not tRP + tRCD.
        sc.enqueue(req(1, MemOp::Read, 65536, 200)).unwrap();
        let start = 200u64;
        let mut done2 = Vec::new();
        let mut finish = 0;
        for c in start..start + 200 {
            sc.tick(MemCycle(c), &mut done2);
            if done2.len() == 1 && finish == 0 {
                finish = c;
            }
        }
        assert!(finish - start <= 26, "closed bank: ACT+RD path, got {}", finish - start);
    }

    #[test]
    fn closed_page_spares_row_hit_streaks() {
        // The hit-streak exception: back-to-back same-row requests still
        // enjoy open-row service under the closed policy.
        let cfg = SubChannelConfig {
            page_policy: PagePolicy::Closed,
            ..SubChannelConfig::default()
        };
        let mut sc = SubChannel::new(cfg);
        for i in 0..8 {
            sc.enqueue(req(i, MemOp::Read, 64 * i, 0)).unwrap();
        }
        let mut done = Vec::new();
        for c in 0..500u64 {
            sc.tick(MemCycle(c), &mut done);
        }
        assert_eq!(done.len(), 8);
        assert_eq!(sc.stats().activates.get(), 1, "one ACT serves the streak");
    }

    #[test]
    fn recorder_sees_only_oram_class_requests() {
        use doram_obs::{EventKind, Recorder, FILTER_ALL};
        let mut sc = SubChannel::new(SubChannelConfig::default());
        let rec = Recorder::shared(64, FILTER_ALL, 1_000);
        sc.set_obs(Some(rec.clone()), 3);
        let mut oram = req(0, MemOp::Read, 0, 0);
        oram.class = RequestClass::Oram;
        sc.enqueue(oram).unwrap();
        sc.enqueue(req(1, MemOp::Read, 64, 0)).unwrap(); // Normal: silent
        run_until_n(&mut sc, 2, 1000);
        let events = rec.borrow().events();
        let issues = events.iter().filter(|e| e.kind == EventKind::DramIssue).count();
        let dones = events.iter().filter(|e| e.kind == EventKind::DramDone).count();
        assert_eq!((issues, dones), (1, 1), "only the ORAM request traces");
        assert!(events.iter().all(|e| e.value == 3), "tagged with the sub index");
    }

    #[test]
    fn blame_attributes_waits_and_conserves() {
        use doram_obs::{BlameClass, Recorder, FILTER_ALL};
        let mut sc = SubChannel::new(SubChannelConfig::default());
        let rec = Recorder::shared(64, FILTER_ALL, 1_000);
        sc.set_obs(Some(rec.clone()), 0);
        // Interleave ORAM and normal reads so each class queues behind
        // the other's bursts.
        let mut done = Vec::new();
        let mut id = 0u64;
        let mut oram_addr = 0u64;
        let mut norm_addr = 1 << 30;
        for c in 0..3_000u64 {
            if c % 6 == 0 && sc.can_accept_read() {
                let (class, addr) = if id.is_multiple_of(2) {
                    oram_addr += 64;
                    (RequestClass::Oram, oram_addr)
                } else {
                    norm_addr += 64;
                    (RequestClass::Normal, norm_addr)
                };
                let mut r = req(id, MemOp::Read, addr, c);
                r.class = class;
                sc.enqueue(r).unwrap();
                id += 1;
            }
            sc.tick(MemCycle(c), &mut done);
        }
        let rec = rec.borrow();
        rec.blame.check_conservation().expect("waits telescope to delay");
        let row = &rec.blame.resources()[0];
        assert_eq!(row.name, "sd.sub0");
        assert!(row.queue_delay > 0, "contended run must record queueing delay");
        // Cross-class interference shows up: the normal co-runner gets
        // blamed for some of the S-App's waiting (and vice versa).
        assert!(
            row.waits[BlameClass::NsApp as usize] > 0
                && row.waits[BlameClass::SAppRead as usize] > 0,
            "expected cross-class blame, got {:?}",
            row.waits
        );
        // Service latency feeds the per-class histograms.
        assert!(rec.class_histogram(BlameClass::SAppRead).count() > 0);
        assert!(rec.class_histogram(BlameClass::NsApp).count() > 0);
    }

    #[test]
    fn blame_is_off_when_filter_excludes_dram() {
        use doram_obs::{parse_filter, Recorder};
        let mut sc = SubChannel::new(SubChannelConfig::default());
        let rec = Recorder::shared(64, parse_filter("sd").unwrap(), 1_000);
        sc.set_obs(Some(rec.clone()), 0);
        sc.enqueue(req(0, MemOp::Read, 0, 0)).unwrap();
        run_until_n(&mut sc, 1, 1000);
        assert!(rec.borrow().blame.is_empty(), "filtered-out subsystem stays silent");
    }

    #[test]
    fn saturated_stream_approaches_peak_bandwidth() {
        // Back-to-back row hits should keep the data bus nearly saturated:
        // a burst every tCCD = 4 cycles = 100% of peak.
        let mut sc = SubChannel::new(SubChannelConfig::default());
        let mut done = Vec::new();
        let mut id = 0u64;
        let mut addr = 0u64;
        for c in 0..20_000u64 {
            while sc.can_accept_read() {
                sc.enqueue(req(id, MemOp::Read, addr, c)).unwrap();
                id += 1;
                addr += 64;
            }
            sc.tick(MemCycle(c), &mut done);
        }
        let util = sc.stats().bus_utilization();
        assert!(util > 0.85, "streaming utilization only {util}");
        assert!(sc.stats().row_hit_rate() > 0.9);
    }
}

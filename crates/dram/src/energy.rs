//! DRAM energy accounting.
//!
//! An IDD-style event-energy model in the spirit of Micron's DDR3 power
//! calculator (and USIMM's power reporting): each command class carries a
//! per-event energy derived from the datasheet currents, plus a
//! background term proportional to time. The paper does not evaluate
//! energy, but the BOB literature it builds on does (\[9\] reports power as
//! a first-class result), so the model rounds out the memory substrate.

use crate::stats::SubChannelStats;

/// Per-event and background energy parameters for one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of an ACTIVATE + (eventual) PRECHARGE pair, in nanojoules.
    pub act_pre_nj: f64,
    /// Energy of a READ burst (command + I/O), in nanojoules.
    pub read_nj: f64,
    /// Energy of a WRITE burst (command + ODT), in nanojoules.
    pub write_nj: f64,
    /// Energy of one REFRESH command, in nanojoules.
    pub refresh_nj: f64,
    /// Background (standby + peripheral) power, in milliwatts.
    pub background_mw: f64,
}

impl EnergyParams {
    /// Representative DDR3-1600 x8-device rank values (Micron 4 Gb
    /// datasheet-derived, as used by USIMM's `power.txt` defaults).
    pub fn ddr3_1600() -> EnergyParams {
        EnergyParams {
            act_pre_nj: 2.7,
            read_nj: 2.4,
            write_nj: 2.6,
            refresh_nj: 27.0,
            background_mw: 110.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams::ddr3_1600()
    }
}

/// Energy consumed by one sub-channel over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Row activation + precharge energy (millijoules).
    pub activation_mj: f64,
    /// Read-burst energy (millijoules).
    pub read_mj: f64,
    /// Write-burst energy (millijoules).
    pub write_mj: f64,
    /// Refresh energy (millijoules).
    pub refresh_mj: f64,
    /// Background energy (millijoules).
    pub background_mj: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown from a sub-channel's counters.
    pub fn from_stats(stats: &SubChannelStats, params: &EnergyParams) -> EnergyBreakdown {
        let nj_to_mj = 1e-6;
        // tCK = 1.25 ns ⇒ cycles × 1.25e-9 s × mW = cycles × 1.25e-9 mJ/mW.
        let seconds = stats.cycles.get() as f64 * 1.25e-9;
        EnergyBreakdown {
            activation_mj: stats.activates.get() as f64 * params.act_pre_nj * nj_to_mj,
            read_mj: stats.reads.get() as f64 * params.read_nj * nj_to_mj,
            write_mj: stats.writes.get() as f64 * params.write_nj * nj_to_mj,
            refresh_mj: stats.refreshes.get() as f64 * params.refresh_nj * nj_to_mj,
            background_mj: seconds * params.background_mw,
        }
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.activation_mj + self.read_mj + self.write_mj + self.refresh_mj + self.background_mj
    }

    /// Average power over the run, in milliwatts; 0 for an empty run.
    pub fn average_mw(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        self.total_mj() / (cycles as f64 * 1.25e-9)
    }

    /// Component-wise sum.
    pub fn add(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            activation_mj: self.activation_mj + other.activation_mj,
            read_mj: self.read_mj + other.read_mj,
            write_mj: self.write_mj + other.write_mj,
            refresh_mj: self.refresh_mj + other.refresh_mj,
            background_mj: self.background_mj + other.background_mj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemOp, MemRequest, RequestClass, SubChannel, SubChannelConfig};
    use doram_sim::{AppId, MemCycle, RequestId};

    #[test]
    fn hand_computed_breakdown() {
        let mut stats = SubChannelStats::default();
        stats.activates.add(1_000);
        stats.reads.add(2_000);
        stats.writes.add(500);
        stats.refreshes.add(10);
        stats.cycles.add(800_000); // 1 ms at 1.25 ns
        let e = EnergyBreakdown::from_stats(&stats, &EnergyParams::ddr3_1600());
        assert!((e.activation_mj - 1_000.0 * 2.7e-6).abs() < 1e-12);
        assert!((e.read_mj - 2_000.0 * 2.4e-6).abs() < 1e-12);
        assert!((e.write_mj - 500.0 * 2.6e-6).abs() < 1e-12);
        assert!((e.refresh_mj - 10.0 * 27.0e-6).abs() < 1e-12);
        // 1 ms × 110 mW = 0.11 mJ.
        assert!((e.background_mj - 0.11).abs() < 1e-9);
        let total = e.total_mj();
        assert!(total > e.background_mj);
        // Average power over 1 ms: total / 1e-3 s.
        assert!((e.average_mw(800_000) - total / 1e-3).abs() < 1e-9);
        assert_eq!(EnergyBreakdown::default().average_mw(0), 0.0);
    }

    #[test]
    fn busier_channels_burn_more_energy() {
        let run = |n_reads: u64| {
            let mut sc = SubChannel::new(SubChannelConfig::default());
            let mut done = Vec::new();
            let mut issued = 0u64;
            for c in 0..20_000u64 {
                if issued < n_reads && sc.can_accept_read() {
                    sc.enqueue(MemRequest {
                        id: RequestId(issued),
                        app: AppId(0),
                        op: MemOp::Read,
                        addr: issued * 64 * 97, // scattered
                        class: RequestClass::Normal,
                        arrival: MemCycle(c),
                    })
                    .expect("capacity checked");
                    issued += 1;
                }
                sc.tick(MemCycle(c), &mut done);
            }
            EnergyBreakdown::from_stats(sc.stats(), &EnergyParams::ddr3_1600()).total_mj()
        };
        let light = run(50);
        let heavy = run(2_000);
        assert!(heavy > light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn add_is_componentwise() {
        let a = EnergyBreakdown {
            activation_mj: 1.0,
            read_mj: 2.0,
            write_mj: 3.0,
            refresh_mj: 4.0,
            background_mj: 5.0,
        };
        let s = a.add(&a);
        assert_eq!(s.total_mj(), 2.0 * a.total_mj());
        assert_eq!(s.read_mj, 4.0);
    }
}

//! Memory requests and completions at the DRAM boundary.

use doram_sim::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use doram_sim::{AppId, MemCycle, RequestId};

/// Read or write, from the memory system's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Fetch a 64 B line.
    Read,
    /// Store a 64 B line (posted; the issuer does not wait on it).
    Write,
}

/// Scheduling class of a request, used by the bandwidth-preallocation
/// arbiter when an S-App and NS-Apps share a channel (§IV, threshold 50%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Ordinary NS-App traffic.
    Normal,
    /// Path ORAM traffic generated on behalf of the S-App.
    Oram,
}

/// A 64 B-line request presented to a sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique identifier (assigned by the issuer).
    pub id: RequestId,
    /// Application the request belongs to (for per-app latency stats).
    pub app: AppId,
    /// Read or write.
    pub op: MemOp,
    /// Physical byte address within this sub-channel's space.
    pub addr: u64,
    /// Scheduling class.
    pub class: RequestClass,
    /// Cycle the request entered the memory system.
    pub arrival: MemCycle,
}

/// A finished request, reported by [`SubChannel::tick`].
///
/// [`SubChannel::tick`]: crate::SubChannel::tick
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: MemRequest,
    /// Cycle its data burst finished.
    pub finished: MemCycle,
}

impl Completion {
    /// End-to-end memory latency in memory cycles.
    pub fn latency(&self) -> u64 {
        self.finished.0 - self.request.arrival.0
    }
}

/// Encodes a [`MemOp`] for snapshots.
pub fn put_mem_op(w: &mut SnapshotWriter, op: MemOp) {
    w.put_u8(match op {
        MemOp::Read => 0,
        MemOp::Write => 1,
    });
}

/// Decodes a [`MemOp`] written by [`put_mem_op`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on truncation or an unknown tag.
pub fn get_mem_op(r: &mut SnapshotReader<'_>) -> Result<MemOp, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(MemOp::Read),
        1 => Ok(MemOp::Write),
        tag => Err(SnapshotError::new(format!("unknown MemOp tag {tag}"))),
    }
}

/// Encodes a [`MemRequest`] for snapshots.
pub fn put_mem_request(w: &mut SnapshotWriter, req: &MemRequest) {
    let MemRequest {
        id,
        app,
        op,
        addr,
        class,
        arrival,
    } = req;
    w.put_u64(id.0);
    w.put_usize(app.0);
    put_mem_op(w, *op);
    w.put_u64(*addr);
    w.put_u8(match class {
        RequestClass::Normal => 0,
        RequestClass::Oram => 1,
    });
    w.put_u64(arrival.0);
}

/// Decodes a [`MemRequest`] written by [`put_mem_request`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on truncation or an unknown tag.
pub fn get_mem_request(r: &mut SnapshotReader<'_>) -> Result<MemRequest, SnapshotError> {
    Ok(MemRequest {
        id: RequestId(r.get_u64()?),
        app: AppId(r.get_usize()?),
        op: get_mem_op(r)?,
        addr: r.get_u64()?,
        class: match r.get_u8()? {
            0 => RequestClass::Normal,
            1 => RequestClass::Oram,
            tag => {
                return Err(SnapshotError::new(format!(
                    "unknown RequestClass tag {tag}"
                )))
            }
        },
        arrival: MemCycle(r.get_u64()?),
    })
}

/// Encodes a [`Completion`] for snapshots.
pub fn put_completion(w: &mut SnapshotWriter, c: &Completion) {
    let Completion { request, finished } = c;
    put_mem_request(w, request);
    w.put_u64(finished.0);
}

/// Decodes a [`Completion`] written by [`put_completion`].
///
/// # Errors
///
/// Returns [`SnapshotError`] on truncation or an unknown tag.
pub fn get_completion(r: &mut SnapshotReader<'_>) -> Result<Completion, SnapshotError> {
    Ok(Completion {
        request: get_mem_request(r)?,
        finished: MemCycle(r.get_u64()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_arrival_to_finish() {
        let c = Completion {
            request: MemRequest {
                id: RequestId(1),
                app: AppId(2),
                op: MemOp::Read,
                addr: 64,
                class: RequestClass::Normal,
                arrival: MemCycle(10),
            },
            finished: MemCycle(47),
        };
        assert_eq!(c.latency(), 37);
    }
}

//! Memory requests and completions at the DRAM boundary.

use doram_sim::{AppId, MemCycle, RequestId};

/// Read or write, from the memory system's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Fetch a 64 B line.
    Read,
    /// Store a 64 B line (posted; the issuer does not wait on it).
    Write,
}

/// Scheduling class of a request, used by the bandwidth-preallocation
/// arbiter when an S-App and NS-Apps share a channel (§IV, threshold 50%).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Ordinary NS-App traffic.
    Normal,
    /// Path ORAM traffic generated on behalf of the S-App.
    Oram,
}

/// A 64 B-line request presented to a sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique identifier (assigned by the issuer).
    pub id: RequestId,
    /// Application the request belongs to (for per-app latency stats).
    pub app: AppId,
    /// Read or write.
    pub op: MemOp,
    /// Physical byte address within this sub-channel's space.
    pub addr: u64,
    /// Scheduling class.
    pub class: RequestClass,
    /// Cycle the request entered the memory system.
    pub arrival: MemCycle,
}

/// A finished request, reported by [`SubChannel::tick`].
///
/// [`SubChannel::tick`]: crate::SubChannel::tick
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: MemRequest,
    /// Cycle its data burst finished.
    pub finished: MemCycle,
}

impl Completion {
    /// End-to-end memory latency in memory cycles.
    pub fn latency(&self) -> u64 {
        self.finished.0 - self.request.arrival.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_arrival_to_finish() {
        let c = Completion {
            request: MemRequest {
                id: RequestId(1),
                app: AppId(2),
                op: MemOp::Read,
                addr: 64,
                class: RequestClass::Normal,
                arrival: MemCycle(10),
            },
            finished: MemCycle(47),
        };
        assert_eq!(c.latency(), 37);
    }
}

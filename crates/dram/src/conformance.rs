//! Command-level JEDEC conformance checking.
//!
//! The scheduler tests assert *behaviour* (latencies, orderings); this
//! module asserts *legality*: record the exact device-command sequence a
//! sub-channel issues and re-validate every JEDEC spacing rule after the
//! fact. The checker is an independent implementation of the constraints,
//! so a bug in the scheduler's bookkeeping cannot hide itself.

use crate::timing::DramTiming;

/// One recorded device command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandRecord {
    /// Issue cycle (tCK).
    pub cycle: u64,
    /// The command.
    pub command: DeviceCommand,
    /// Target bank.
    pub bank: usize,
    /// Target row (ACT) or the open row (column commands); unused for
    /// REFRESH.
    pub row: u64,
}

/// DRAM device commands, as they appear on the command bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceCommand {
    /// Row activation.
    Activate,
    /// Bank precharge.
    Precharge,
    /// Column read (BL8).
    Read,
    /// Column write (BL8).
    Write,
    /// All-bank refresh.
    Refresh,
}

/// A detected JEDEC violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that was broken (e.g. `"tRCD"`).
    pub rule: &'static str,
    /// Cycle of the offending command.
    pub at: u64,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated at cycle {}: {}", self.rule, self.at, self.detail)
    }
}

/// Per-bank replay state for the checker.
#[derive(Debug, Clone, Copy, Default)]
struct BankState {
    open: Option<u64>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_read: Option<u64>,
    last_write: Option<u64>,
}

/// Validates a recorded command stream against `timing`.
///
/// Checks tRCD, tRP, tRAS, tRC, tRTP, write-recovery, tCCD, tRRD, tFAW,
/// tWTR, refresh legality (all banks closed), and structural rules
/// (no ACT on an open bank, no column to a closed or mismatched row).
///
/// # Errors
///
/// Returns every violation found, in command order.
pub fn check_conformance(
    records: &[CommandRecord],
    t: &DramTiming,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    let mut banks = vec![BankState::default(); 64];
    let mut recent_acts: Vec<u64> = Vec::new();
    let mut last_col: Option<(u64, DeviceCommand)> = None;
    let mut last_write_data_end: Option<u64> = None;
    let mut refresh_block_until = 0u64;

    let mut violate = |rule: &'static str, at: u64, detail: String| {
        violations.push(Violation { rule, at, detail });
    };

    for r in records {
        let now = r.cycle;
        if now < refresh_block_until {
            violate("tRFC", now, format!("command during refresh (until {refresh_block_until})"));
        }
        if r.bank >= banks.len() {
            banks.resize(r.bank + 1, BankState::default());
        }
        match r.command {
            DeviceCommand::Activate => {
                let b = banks[r.bank];
                if b.open.is_some() {
                    violate("ACT-on-open", now, format!("bank {} already open", r.bank));
                }
                if let Some(pre) = b.last_pre {
                    if now < pre + t.t_rp {
                        violate("tRP", now, format!("ACT {} after PRE {pre}", now - pre));
                    }
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_rc {
                        violate("tRC", now, format!("ACT {} after ACT {act}", now - act));
                    }
                }
                if let Some(&last) = recent_acts.last() {
                    if now < last + t.t_rrd {
                        violate("tRRD", now, format!("ACT {} after ACT {last}", now - last));
                    }
                }
                recent_acts.push(now);
                let w = recent_acts
                    .iter()
                    .filter(|&&a| a + t.t_faw > now)
                    .count();
                if w > 4 {
                    violate("tFAW", now, format!("{w} ACTs within the window"));
                }
                banks[r.bank].open = Some(r.row);
                banks[r.bank].last_act = Some(now);
            }
            DeviceCommand::Precharge => {
                let b = banks[r.bank];
                if b.open.is_none() {
                    violate("PRE-on-closed", now, format!("bank {}", r.bank));
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_ras {
                        violate("tRAS", now, format!("PRE {} after ACT {act}", now - act));
                    }
                }
                if let Some(rd) = b.last_read {
                    if now < rd + t.t_rtp {
                        violate("tRTP", now, format!("PRE {} after RD {rd}", now - rd));
                    }
                }
                if let Some(wr) = b.last_write {
                    if now < wr + t.cwl + t.t_burst + t.t_wr {
                        violate("tWR", now, format!("PRE {} after WR {wr}", now - wr));
                    }
                }
                banks[r.bank].open = None;
                banks[r.bank].last_pre = Some(now);
            }
            DeviceCommand::Read | DeviceCommand::Write => {
                let b = banks[r.bank];
                match b.open {
                    None => violate("COL-on-closed", now, format!("bank {}", r.bank)),
                    Some(open) if open != r.row => {
                        violate("COL-row-mismatch", now, format!("open {open} vs {}", r.row))
                    }
                    Some(_) => {}
                }
                if let Some(act) = b.last_act {
                    if now < act + t.t_rcd {
                        violate("tRCD", now, format!("COL {} after ACT {act}", now - act));
                    }
                }
                if let Some((col, _)) = last_col {
                    if now < col + t.t_ccd {
                        violate("tCCD", now, format!("COL {} after COL {col}", now - col));
                    }
                }
                if r.command == DeviceCommand::Read {
                    if let Some(end) = last_write_data_end {
                        if now < end + t.t_wtr {
                            violate(
                                "tWTR",
                                now,
                                format!("RD at {now}, WR data ends {end}"),
                            );
                        }
                    }
                    banks[r.bank].last_read = Some(now);
                } else {
                    last_write_data_end = Some(now + t.cwl + t.t_burst);
                    banks[r.bank].last_write = Some(now);
                }
                last_col = Some((now, r.command));
            }
            DeviceCommand::Refresh => {
                if banks.iter().any(|b| b.open.is_some()) {
                    violate("REF-with-open-row", now, "refresh with open banks".into());
                }
                refresh_block_until = now + t.t_rfc;
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, command: DeviceCommand, bank: usize, row: u64) -> CommandRecord {
        CommandRecord {
            cycle,
            command,
            bank,
            row,
        }
    }

    #[test]
    fn legal_sequence_passes() {
        let t = DramTiming::ddr3_1600();
        let trace = vec![
            rec(0, DeviceCommand::Activate, 0, 5),
            rec(11, DeviceCommand::Read, 0, 5),
            rec(15, DeviceCommand::Read, 0, 5),
            rec(28, DeviceCommand::Precharge, 0, 5),
            rec(39, DeviceCommand::Activate, 0, 6),
        ];
        check_conformance(&trace, &t).unwrap();
    }

    #[test]
    fn early_read_is_a_trcd_violation() {
        let t = DramTiming::ddr3_1600();
        let trace = vec![
            rec(0, DeviceCommand::Activate, 0, 5),
            rec(10, DeviceCommand::Read, 0, 5),
        ];
        let v = check_conformance(&trace, &t).unwrap_err();
        assert!(v.iter().any(|x| x.rule == "tRCD"), "{v:?}");
        assert!(v[0].to_string().contains("tRCD"));
    }

    #[test]
    fn early_precharge_is_a_tras_violation() {
        let t = DramTiming::ddr3_1600();
        let trace = vec![
            rec(0, DeviceCommand::Activate, 0, 1),
            rec(20, DeviceCommand::Precharge, 0, 1),
        ];
        let v = check_conformance(&trace, &t).unwrap_err();
        assert!(v.iter().any(|x| x.rule == "tRAS"));
    }

    #[test]
    fn tight_activates_violate_trrd_and_tfaw() {
        let t = DramTiming::ddr3_1600();
        let trace: Vec<_> = (0..6)
            .map(|i| rec(i * 2, DeviceCommand::Activate, i as usize, 0))
            .collect();
        let v = check_conformance(&trace, &t).unwrap_err();
        assert!(v.iter().any(|x| x.rule == "tRRD"));
    }

    #[test]
    fn structural_violations_detected() {
        let t = DramTiming::ddr3_1600();
        // Column to a closed bank, ACT on open bank, PRE on closed bank.
        let v = check_conformance(&[rec(0, DeviceCommand::Read, 0, 1)], &t).unwrap_err();
        assert_eq!(v[0].rule, "COL-on-closed");
        let v = check_conformance(
            &[
                rec(0, DeviceCommand::Activate, 0, 1),
                rec(50, DeviceCommand::Activate, 0, 2),
            ],
            &t,
        )
        .unwrap_err();
        assert!(v.iter().any(|x| x.rule == "ACT-on-open"));
        let v = check_conformance(&[rec(0, DeviceCommand::Precharge, 0, 1)], &t).unwrap_err();
        assert_eq!(v[0].rule, "PRE-on-closed");
    }

    #[test]
    fn write_then_fast_read_violates_twtr() {
        let t = DramTiming::ddr3_1600();
        let trace = vec![
            rec(0, DeviceCommand::Activate, 0, 1),
            rec(11, DeviceCommand::Write, 0, 1),
            rec(16, DeviceCommand::Read, 0, 1),
        ];
        let v = check_conformance(&trace, &t).unwrap_err();
        assert!(v.iter().any(|x| x.rule == "tWTR"), "{v:?}");
    }

    #[test]
    fn refresh_rules() {
        let t = DramTiming::ddr3_1600();
        // Refresh with an open row.
        let v = check_conformance(
            &[
                rec(0, DeviceCommand::Activate, 0, 1),
                rec(40, DeviceCommand::Refresh, 0, 0),
            ],
            &t,
        )
        .unwrap_err();
        assert!(v.iter().any(|x| x.rule == "REF-with-open-row"));
        // Command during tRFC.
        let v = check_conformance(
            &[
                rec(0, DeviceCommand::Refresh, 0, 0),
                rec(10, DeviceCommand::Activate, 0, 1),
            ],
            &t,
        )
        .unwrap_err();
        assert!(v.iter().any(|x| x.rule == "tRFC"));
    }
}

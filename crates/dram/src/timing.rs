//! JEDEC DDR3 timing parameters.
//!
//! All values are in DRAM command-clock cycles (tCK = 1.25 ns at
//! DDR3-1600). The defaults follow the JEDEC DDR3-1600K speed bin that
//! USIMM's `1600` configuration uses, which the paper adopts unchanged
//! ("We adopted the default values in the specification that are strictly
//! enforced in USIMM", §IV).

/// DDR3 device timing constraints, in tCK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// CAS latency: READ command to first data beat.
    pub cl: u64,
    /// CAS write latency: WRITE command to first data beat.
    pub cwl: u64,
    /// ACTIVATE to internal read/write (RAS-to-CAS delay).
    pub t_rcd: u64,
    /// PRECHARGE to ACTIVATE of the same bank.
    pub t_rp: u64,
    /// ACTIVATE to PRECHARGE of the same bank (row active minimum).
    pub t_ras: u64,
    /// ACTIVATE to ACTIVATE of the same bank (= tRAS + tRP).
    pub t_rc: u64,
    /// Column-to-column command spacing (burst-chop aside, = burst length/2).
    pub t_ccd: u64,
    /// ACTIVATE to ACTIVATE, different banks, same rank.
    pub t_rrd: u64,
    /// Four-activate window: at most four ACTs per rank in this window.
    pub t_faw: u64,
    /// READ to PRECHARGE of the same bank.
    pub t_rtp: u64,
    /// Write recovery: end of write data to PRECHARGE of the same bank.
    pub t_wr: u64,
    /// Write-to-read turnaround: end of write data to READ command.
    pub t_wtr: u64,
    /// Data-bus turnaround gap inserted between opposite-direction bursts.
    pub t_rtrs: u64,
    /// Data burst duration (BL8 on a x64 channel = 4 tCK).
    pub t_burst: u64,
    /// Refresh cycle time (REFRESH to next valid command).
    pub t_rfc: u64,
    /// Average refresh interval (one REFRESH command due every tREFI).
    pub t_refi: u64,
}

impl DramTiming {
    /// JEDEC DDR3-1600 (11-11-11) parameters, 4 Gb devices.
    pub fn ddr3_1600() -> DramTiming {
        DramTiming {
            cl: 11,
            cwl: 8,
            t_rcd: 11,
            t_rp: 11,
            t_ras: 28,
            t_rc: 39,
            t_ccd: 4,
            t_rrd: 5,
            t_faw: 24,
            t_rtp: 6,
            t_wr: 12,
            t_wtr: 6,
            t_rtrs: 2,
            t_burst: 4,
            t_rfc: 208,
            t_refi: 6240,
        }
    }

    /// JEDEC DDR3-1333 (9-9-9): the slower mainstream bin, for
    /// sensitivity studies. Note tCK is 1.5 ns at this rate; the workspace
    /// clocks everything in DDR3-1600 tCK units, so these values are the
    /// 1333 analog constraints expressed in cycles of its own clock.
    pub fn ddr3_1333() -> DramTiming {
        DramTiming {
            cl: 9,
            cwl: 7,
            t_rcd: 9,
            t_rp: 9,
            t_ras: 24,
            t_rc: 33,
            t_ccd: 4,
            t_rrd: 4,
            t_faw: 20,
            t_rtp: 5,
            t_wr: 10,
            t_wtr: 5,
            t_rtrs: 2,
            t_burst: 4,
            t_rfc: 174,
            t_refi: 5200,
        }
    }

    /// Idealized zero-latency timing: every command legal immediately, data
    /// still occupies the bus for `t_burst`. Used by unit tests that want to
    /// isolate scheduler policy from device timing.
    pub fn ideal() -> DramTiming {
        DramTiming {
            cl: 1,
            cwl: 1,
            t_rcd: 1,
            t_rp: 1,
            t_ras: 1,
            t_rc: 2,
            t_ccd: 4,
            t_rrd: 1,
            t_faw: 4,
            t_rtp: 1,
            t_wr: 1,
            t_wtr: 1,
            t_rtrs: 0,
            t_burst: 4,
            t_rfc: 1,
            t_refi: u64::MAX / 4,
        }
    }

    /// Validates internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must be >= tRAS + tRP ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_faw < self.t_rrd {
            return Err("tFAW must be >= tRRD".into());
        }
        if self.t_burst == 0 {
            return Err("tBURST must be positive".into());
        }
        if self.t_refi <= self.t_rfc {
            return Err("tREFI must exceed tRFC".into());
        }
        Ok(())
    }

    /// Minimum read latency of an idle, open-row bank: CL + burst.
    pub fn best_case_read(&self) -> u64 {
        self.cl + self.t_burst
    }

    /// Read latency with a row miss: tRP + tRCD + CL + burst.
    pub fn row_miss_read(&self) -> u64 {
        self.t_rp + self.t_rcd + self.cl + self.t_burst
    }
}

impl Default for DramTiming {
    fn default() -> DramTiming {
        DramTiming::ddr3_1600()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_1600_is_valid() {
        DramTiming::ddr3_1600().validate().unwrap();
        DramTiming::ideal().validate().unwrap();
    }

    #[test]
    fn ddr3_1600_key_values() {
        let t = DramTiming::ddr3_1600();
        // 13.75 ns tRCD/tRP/CL at 1.25 ns tCK.
        assert_eq!(t.cl, 11);
        assert_eq!(t.t_rcd, 11);
        assert_eq!(t.t_rp, 11);
        // tRC = tRAS + tRP.
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
        assert_eq!(t.best_case_read(), 15);
        assert_eq!(t.row_miss_read(), 37);
    }

    #[test]
    fn ddr3_1333_is_valid_and_slower_per_cycle_count() {
        let t = DramTiming::ddr3_1333();
        t.validate().unwrap();
        let fast = DramTiming::ddr3_1600();
        // Same-generation parts: fewer cycles per constraint at the lower
        // clock (absolute nanoseconds are comparable).
        assert!(t.cl < fast.cl);
        assert!(t.t_rc < fast.t_rc);
        assert_eq!(t.t_rc, t.t_ras + t.t_rp);
    }

    #[test]
    fn validate_rejects_inconsistency() {
        let mut t = DramTiming::ddr3_1600();
        t.t_rc = 10;
        assert!(t.validate().is_err());
        let mut t = DramTiming::ddr3_1600();
        t.t_refi = 10;
        assert!(t.validate().is_err());
        let mut t = DramTiming::ddr3_1600();
        t.t_burst = 0;
        assert!(t.validate().is_err());
        let mut t = DramTiming::ddr3_1600();
        t.t_faw = 1;
        assert!(t.validate().is_err());
    }
}

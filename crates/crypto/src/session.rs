//! The CPU ↔ SD secure session.
//!
//! Before execution, the on-chip secure engine and the secure delegator
//! negotiate a secret key `K` and nonce `N0` (the paper adopts a PKI
//! handshake from InvisiMem; we model it as deterministic key agreement
//! seeded by the experiment). Afterwards every 72 B packet is OTP-encrypted
//! and tagged, and the receiver enforces strictly increasing sequence numbers
//! to reject replays.

use crate::mac::{Cmac, TAG_BYTES};
use crate::otp::{OtpStream, PACKET_BYTES};

/// An encrypted-and-authenticated packet on the serial link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedPacket {
    /// OTP-encrypted 72 B payload.
    pub ciphertext: [u8; PACKET_BYTES],
    /// Sequence number of the pad used (sent in clear, authenticated).
    pub seq: u64,
    /// Truncated CMAC over `seq || ciphertext`.
    pub tag: [u8; TAG_BYTES],
}

impl SealedPacket {
    /// Total bytes on the wire: payload + sequence number + tag.
    pub const WIRE_BYTES: usize = PACKET_BYTES + 8 + TAG_BYTES;
}

/// Reasons a received packet is rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The authentication tag did not verify (forgery or corruption).
    BadTag,
    /// The sequence number was not strictly newer than the last accepted one
    /// (replayed or reordered packet).
    Replay {
        /// Sequence number carried by the offending packet.
        got: u64,
        /// Next sequence number the receiver expects.
        expected: u64,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::BadTag => write!(f, "packet authentication failed"),
            SessionError::Replay { got, expected } => {
                write!(f, "replayed packet: got seq {got}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// One end of the secure session (CPU side or SD side).
///
/// Each endpoint owns an outbound pad stream and mirrors the peer's inbound
/// stream; directions use distinct nonces so request and response pads never
/// collide.
#[derive(Debug, Clone)]
pub struct SecureEndpoint {
    tx: OtpStream,
    rx: OtpStream,
    mac: Cmac,
    rx_expected: u64,
}

impl SecureEndpoint {
    /// Seals a cleartext 72 B packet for transmission.
    pub fn seal(&mut self, packet: &[u8; PACKET_BYTES]) -> SealedPacket {
        let seq = self.tx.seq();
        let ciphertext = self.tx.apply(packet);
        let mut auth = Vec::with_capacity(8 + PACKET_BYTES);
        auth.extend_from_slice(&seq.to_be_bytes());
        auth.extend_from_slice(&ciphertext);
        SealedPacket {
            ciphertext,
            seq,
            tag: self.mac.tag(&auth),
        }
    }

    /// Opens a received packet: verifies the tag, enforces replay freshness,
    /// and decrypts.
    ///
    /// # Errors
    ///
    /// [`SessionError::BadTag`] if authentication fails;
    /// [`SessionError::Replay`] if the sequence number is stale.
    pub fn open(&mut self, sealed: &SealedPacket) -> Result<[u8; PACKET_BYTES], SessionError> {
        let mut auth = Vec::with_capacity(8 + PACKET_BYTES);
        auth.extend_from_slice(&sealed.seq.to_be_bytes());
        auth.extend_from_slice(&sealed.ciphertext);
        if !self.mac.verify(&auth, &sealed.tag) {
            return Err(SessionError::BadTag);
        }
        if sealed.seq < self.rx_expected {
            return Err(SessionError::Replay {
                got: sealed.seq,
                expected: self.rx_expected,
            });
        }
        self.rx_expected = sealed.seq + 1;
        let pad = self.rx.pad_for(sealed.seq);
        let mut out = sealed.ciphertext;
        for (o, p) in out.iter_mut().zip(pad.iter()) {
            *o ^= p;
        }
        Ok(out)
    }
}

/// A freshly negotiated session, producing the two paired endpoints.
#[derive(Debug, Clone)]
pub struct SessionPair {
    cpu: SecureEndpoint,
    sd: SecureEndpoint,
}

impl SessionPair {
    /// Simulates the PKI negotiation: both parties derive `K` and the two
    /// directional nonces from the shared `session_seed`.
    pub fn negotiate(session_seed: u64) -> SessionPair {
        // Key derivation: expand the seed through AES in a fixed-key Davies-
        // Meyer-ish construction. Strength is irrelevant for the simulation;
        // determinism and distinctness are what matter.
        let kdf = crate::aes::Aes128::new(*b"D-ORAM-SESSIONKD");
        let mut block = [0u8; 16];
        block[..8].copy_from_slice(&session_seed.to_be_bytes());
        let k = kdf.encrypt_block(block);
        block[8] = 1;
        let n = kdf.encrypt_block(block);
        let n_cpu_to_sd = u64::from_be_bytes(n[..8].try_into().expect("8 bytes"));
        let n_sd_to_cpu = u64::from_be_bytes(n[8..].try_into().expect("8 bytes"));
        let mac_key = kdf.encrypt_block({
            let mut b = block;
            b[8] = 2;
            b
        });

        let cpu = SecureEndpoint {
            tx: OtpStream::new(k, n_cpu_to_sd),
            rx: OtpStream::new(k, n_sd_to_cpu),
            mac: Cmac::new(mac_key),
            rx_expected: 0,
        };
        let sd = SecureEndpoint {
            tx: OtpStream::new(k, n_sd_to_cpu),
            rx: OtpStream::new(k, n_cpu_to_sd),
            mac: Cmac::new(mac_key),
            rx_expected: 0,
        };
        SessionPair { cpu, sd }
    }

    /// Splits into `(cpu_endpoint, sd_endpoint)`.
    pub fn into_endpoints(self) -> (SecureEndpoint, SecureEndpoint) {
        (self.cpu, self.sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureEndpoint, SecureEndpoint) {
        SessionPair::negotiate(42).into_endpoints()
    }

    #[test]
    fn round_trip_both_directions() {
        let (mut cpu, mut sd) = pair();
        let req = [0x11; PACKET_BYTES];
        let resp = [0x22; PACKET_BYTES];
        let wire = cpu.seal(&req);
        assert_eq!(sd.open(&wire).unwrap(), req);
        let wire = sd.seal(&resp);
        assert_eq!(cpu.open(&wire).unwrap(), resp);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let (mut cpu, _) = pair();
        let msg = [0u8; PACKET_BYTES];
        let sealed = cpu.seal(&msg);
        assert_ne!(sealed.ciphertext, msg);
    }

    #[test]
    fn identical_plaintexts_encrypt_differently() {
        // OTP with fresh sequence numbers: no deterministic leakage of
        // repeated requests (read vs write indistinguishability relies on
        // this plus the fixed packet size).
        let (mut cpu, _) = pair();
        let msg = [0x77; PACKET_BYTES];
        let a = cpu.seal(&msg);
        let b = cpu.seal(&msg);
        assert_ne!(a.ciphertext, b.ciphertext);
    }

    #[test]
    fn replay_is_rejected() {
        let (mut cpu, mut sd) = pair();
        let wire = cpu.seal(&[1; PACKET_BYTES]);
        assert!(sd.open(&wire).is_ok());
        assert_eq!(
            sd.open(&wire),
            Err(SessionError::Replay {
                got: 0,
                expected: 1
            })
        );
    }

    #[test]
    fn forgery_is_rejected() {
        let (mut cpu, mut sd) = pair();
        let mut wire = cpu.seal(&[1; PACKET_BYTES]);
        wire.ciphertext[0] ^= 0xFF;
        assert_eq!(sd.open(&wire), Err(SessionError::BadTag));
    }

    #[test]
    fn tag_covers_sequence_number() {
        let (mut cpu, mut sd) = pair();
        let mut wire = cpu.seal(&[1; PACKET_BYTES]);
        wire.seq += 1;
        assert_eq!(sd.open(&wire), Err(SessionError::BadTag));
    }

    #[test]
    fn sessions_with_different_seeds_cannot_interoperate() {
        let (mut cpu, _) = SessionPair::negotiate(1).into_endpoints();
        let (_, mut sd) = SessionPair::negotiate(2).into_endpoints();
        let wire = cpu.seal(&[9; PACKET_BYTES]);
        assert!(sd.open(&wire).is_err());
    }

    #[test]
    fn wire_size_is_fixed() {
        assert_eq!(SealedPacket::WIRE_BYTES, 88);
    }

    #[test]
    fn error_display() {
        assert!(SessionError::BadTag.to_string().contains("authentication"));
        let r = SessionError::Replay {
            got: 3,
            expected: 5,
        };
        assert!(r.to_string().contains("3") && r.to_string().contains("5"));
    }
}

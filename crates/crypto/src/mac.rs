//! AES-CMAC (RFC 4493) message authentication.
//!
//! The paper requires packets to carry authentication and integrity-check
//! bits so an attacker on the serial link can neither inject nor replay
//! packets (§III-B item 4). We implement the standard CMAC construction and
//! validate it against the RFC 4493 test vectors.

use crate::aes::Aes128;

/// Tag length carried on each BOB packet, in bytes. A truncated 8-byte CMAC
/// matches the modest check-bit budget the paper describes.
pub const TAG_BYTES: usize = 8;

/// AES-CMAC keyed authenticator.
///
/// # Examples
///
/// ```
/// use doram_crypto::mac::Cmac;
/// let mac = Cmac::new([0x2B; 16]);
/// let tag = mac.tag(b"hello");
/// assert!(mac.verify(b"hello", &tag));
/// assert!(!mac.verify(b"hellp", &tag));
/// ```
#[derive(Debug, Clone)]
pub struct Cmac {
    cipher: Aes128,
    k1: [u8; 16],
    k2: [u8; 16],
}

/// Doubles a value in GF(2^128) with the CMAC polynomial (x^128+x^7+x^2+x+1).
fn dbl(block: [u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let mut carry = 0u8;
    for i in (0..16).rev() {
        let b = block[i];
        out[i] = (b << 1) | carry;
        carry = b >> 7;
    }
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

impl Cmac {
    /// Creates an authenticator and derives the two CMAC subkeys.
    pub fn new(key: [u8; 16]) -> Cmac {
        let cipher = Aes128::new(key);
        let l = cipher.encrypt_block([0u8; 16]);
        let k1 = dbl(l);
        let k2 = dbl(k1);
        Cmac { cipher, k1, k2 }
    }

    /// Computes the full 16-byte CMAC of `message`.
    pub fn full_tag(&self, message: &[u8]) -> [u8; 16] {
        let n_blocks = message.len().div_ceil(16).max(1);
        let complete = !message.is_empty() && message.len().is_multiple_of(16);

        fn xor_into(dst: &mut [u8; 16], src: &[u8]) {
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d ^= s;
            }
        }

        let mut x = [0u8; 16];
        for blk in 0..n_blocks - 1 {
            xor_into(&mut x, &message[blk * 16..blk * 16 + 16]);
            x = self.cipher.encrypt_block(x);
        }

        let mut last = [0u8; 16];
        let tail = &message[(n_blocks - 1) * 16..];
        if complete {
            last.copy_from_slice(tail);
            xor_into(&mut last, &self.k1);
        } else {
            last[..tail.len()].copy_from_slice(tail);
            last[tail.len()] = 0x80;
            xor_into(&mut last, &self.k2);
        }
        xor_into(&mut x, &last);
        self.cipher.encrypt_block(x)
    }

    /// Computes the truncated [`TAG_BYTES`]-byte tag used on packets.
    pub fn tag(&self, message: &[u8]) -> [u8; TAG_BYTES] {
        let full = self.full_tag(message);
        let mut tag = [0u8; TAG_BYTES];
        tag.copy_from_slice(&full[..TAG_BYTES]);
        tag
    }

    /// Verifies a truncated tag in constant-ish time.
    pub fn verify(&self, message: &[u8], tag: &[u8; TAG_BYTES]) -> bool {
        let expect = self.tag(message);
        let mut diff = 0u8;
        for (a, b) in expect.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        s.as_bytes()
            .chunks(2)
            .map(|c| u8::from_str_radix(std::str::from_utf8(c).unwrap(), 16).unwrap())
            .collect()
    }

    fn rfc_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        k
    }

    #[test]
    fn rfc4493_empty_message() {
        let mac = Cmac::new(rfc_key());
        assert_eq!(
            mac.full_tag(b"").to_vec(),
            hex("bb1d6929e95937287fa37d129b756746")
        );
    }

    #[test]
    fn rfc4493_one_block() {
        let mac = Cmac::new(rfc_key());
        let msg = hex("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            mac.full_tag(&msg).to_vec(),
            hex("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_40_bytes() {
        let mac = Cmac::new(rfc_key());
        let msg = hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411"
        ));
        assert_eq!(
            mac.full_tag(&msg).to_vec(),
            hex("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn tampering_is_detected() {
        let mac = Cmac::new([1; 16]);
        let tag = mac.tag(&[0u8; 72]);
        let mut forged = [0u8; 72];
        forged[3] = 1;
        assert!(!mac.verify(&forged, &tag));
        assert!(mac.verify(&[0u8; 72], &tag));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        let a = Cmac::new([1; 16]);
        let b = Cmac::new([2; 16]);
        assert_ne!(a.tag(b"msg"), b.tag(b"msg"));
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let mac = Cmac::new([1; 16]);
        assert_eq!(mac.tag(b"abc"), mac.full_tag(b"abc")[..TAG_BYTES]);
    }
}

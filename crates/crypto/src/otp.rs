//! One-time-pad stream per the paper's Equation (1):
//!
//! ```text
//! OTP        = AES(K, N0, SeqNum)
//! SeqNum     = SeqNum + 1
//! Enc_Packet = OTP ⊕ Cleartext_Packet
//! ```
//!
//! A 72 B BOB packet needs 4.5 AES blocks, so each pad draws five AES-CTR
//! blocks keyed by `(N0, SeqNum)`. Because the pad depends only on the
//! sequence number, both ends can pre-generate pads while an ORAM access is
//! in flight — the property the paper uses to argue the crypto latency is
//! negligible.

use crate::aes::Aes128;

/// Wire size of a full BOB packet (1-bit type + 63-bit address + 512-bit
/// data, §III-B).
pub const PACKET_BYTES: usize = 72;

/// AES blocks needed to cover one packet.
const BLOCKS_PER_PAD: usize = PACKET_BYTES.div_ceil(16);

/// Deterministic pad generator shared (with the same key/nonce) by the
/// on-chip secure engine and the SD.
///
/// # Examples
///
/// ```
/// use doram_crypto::otp::OtpStream;
/// let mut tx = OtpStream::new([1; 16], 77);
/// let mut rx = OtpStream::new([1; 16], 77);
/// let packet = [0x5A; 72];
/// let sealed = tx.apply(&packet);
/// assert_ne!(sealed, packet);
/// assert_eq!(rx.apply(&sealed), packet); // XOR pad is an involution
/// ```
#[derive(Debug, Clone)]
pub struct OtpStream {
    cipher: Aes128,
    nonce: u64,
    seq: u64,
}

impl OtpStream {
    /// Creates a stream from the negotiated key `k` and nonce `n0`.
    pub fn new(k: [u8; 16], n0: u64) -> OtpStream {
        OtpStream {
            cipher: Aes128::new(k),
            nonce: n0,
            seq: 0,
        }
    }

    /// Current sequence number (the next pad to be produced).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Produces the pad for the current sequence number and advances it.
    pub fn next_pad(&mut self) -> [u8; PACKET_BYTES] {
        let pad = self.pad_for(self.seq);
        self.seq += 1;
        pad
    }

    /// Computes the pad for an arbitrary sequence number without advancing.
    ///
    /// Exposed so the simulator can model pad *pre-generation*: the secure
    /// engine computes pads for future sequence numbers during the long ORAM
    /// access window.
    pub fn pad_for(&self, seq: u64) -> [u8; PACKET_BYTES] {
        let mut pad = [0u8; PACKET_BYTES];
        for blk in 0..BLOCKS_PER_PAD {
            let mut ctr = [0u8; 16];
            ctr[..8].copy_from_slice(&self.nonce.to_be_bytes());
            ctr[8..].copy_from_slice(&(seq * BLOCKS_PER_PAD as u64 + blk as u64).to_be_bytes());
            let ks = self.cipher.encrypt_block(ctr);
            let start = blk * 16;
            let end = (start + 16).min(PACKET_BYTES);
            pad[start..end].copy_from_slice(&ks[..end - start]);
        }
        pad
    }

    /// XORs the next pad onto `packet`, returning the (en/de)crypted packet
    /// and advancing the sequence number.
    pub fn apply(&mut self, packet: &[u8; PACKET_BYTES]) -> [u8; PACKET_BYTES] {
        let pad = self.next_pad();
        let mut out = *packet;
        for (o, p) in out.iter_mut().zip(pad.iter()) {
            *o ^= p;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pads_are_unique_per_seq() {
        let s = OtpStream::new([9; 16], 1);
        assert_ne!(s.pad_for(0), s.pad_for(1));
        assert_ne!(s.pad_for(1), s.pad_for(2));
    }

    #[test]
    fn pads_differ_across_nonces() {
        let a = OtpStream::new([9; 16], 1);
        let b = OtpStream::new([9; 16], 2);
        assert_ne!(a.pad_for(0), b.pad_for(0));
    }

    #[test]
    fn counter_blocks_do_not_collide_across_sequence_numbers() {
        // Sequence n uses blocks [5n, 5n+5); adjacent sequences must not
        // overlap, otherwise pad reuse would break OTP security.
        let s = OtpStream::new([3; 16], 42);
        let p0 = s.pad_for(0);
        let p1 = s.pad_for(1);
        // Last block of p0 and first block of p1 derive from different
        // counters, so with overwhelming probability they differ.
        assert_ne!(&p0[64..72], &p1[0..8]);
    }

    #[test]
    fn apply_advances_sequence() {
        let mut s = OtpStream::new([0; 16], 0);
        assert_eq!(s.seq(), 0);
        let _ = s.apply(&[0; PACKET_BYTES]);
        assert_eq!(s.seq(), 1);
    }

    #[test]
    fn two_endpoints_stay_in_sync() {
        let mut tx = OtpStream::new([5; 16], 123);
        let mut rx = OtpStream::new([5; 16], 123);
        for round in 0..10u8 {
            let msg = [round; PACKET_BYTES];
            let wire = tx.apply(&msg);
            assert_eq!(rx.apply(&wire), msg);
        }
    }

    #[test]
    fn pregeneration_matches_live_stream() {
        let mut live = OtpStream::new([8; 16], 9);
        let offline = live.clone();
        let precomputed: Vec<_> = (0..4).map(|s| offline.pad_for(s)).collect();
        for pad in precomputed {
            assert_eq!(live.next_pad(), pad);
        }
    }
}

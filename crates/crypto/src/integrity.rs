//! Merkle-tree memory integrity (§III-B item 4).
//!
//! The paper requires packets and memory contents to be protected against
//! *replay*: an attacker on the untrusted bus can re-supply a stale (but
//! correctly encrypted and authenticated) block. The standard defense
//! (Suh et al. \[36\], used by the secure-DIMM proposal \[18\] the paper
//! cites) is a hash tree over memory: the trusted side keeps only the
//! root; every block read is checked against a Merkle path, every write
//! updates it.
//!
//! The node function is CMAC-based (keyed), so the whole construction
//! reuses the crate's verified AES core. The tree is dense and in-memory
//! — suitable for the SD's metadata over the ORAM region (one hash per
//! bucket) and for tests/examples.

use crate::mac::Cmac;

/// Width of a node digest in bytes (full CMAC output).
pub const DIGEST_BYTES: usize = 16;

type Digest = [u8; DIGEST_BYTES];

/// A keyed Merkle tree over `2^depth` leaves.
///
/// # Examples
///
/// ```
/// use doram_crypto::integrity::MerkleTree;
/// let mut tree = MerkleTree::new(4, [9; 16]); // 16 leaves
/// tree.update(3, b"hello");
/// assert!(tree.verify(3, b"hello"));
/// assert!(!tree.verify(3, b"jello"));
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    mac: Cmac,
    depth: u32,
    /// Heap-ordered nodes: index 0 is the root; leaves occupy the last
    /// 2^depth slots.
    nodes: Vec<Digest>,
}

/// A verification path: sibling digests from leaf to root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerklePath {
    leaf: u64,
    siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Creates a tree of `2^depth` leaves, all initialized to the digest
    /// of the empty block.
    ///
    /// # Panics
    ///
    /// Panics if `depth > 28` (keeps the dense allocation sane).
    pub fn new(depth: u32, key: [u8; 16]) -> MerkleTree {
        assert!(depth <= 28, "tree too large for a dense representation");
        let mac = Cmac::new(key);
        let total = (1usize << (depth + 1)) - 1;
        let mut tree = MerkleTree {
            mac,
            depth,
            nodes: vec![[0u8; DIGEST_BYTES]; total],
        };
        // Initialize leaves to H(empty) and fold upward.
        let empty = tree.leaf_digest(b"");
        let first_leaf = tree.first_leaf();
        for i in 0..tree.num_leaves() as usize {
            tree.nodes[first_leaf + i] = empty;
        }
        for idx in (0..first_leaf).rev() {
            tree.nodes[idx] = tree.combine(&tree.nodes[2 * idx + 1], &tree.nodes[2 * idx + 2]);
        }
        tree
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        1 << self.depth
    }

    fn first_leaf(&self) -> usize {
        (1 << self.depth) - 1
    }

    fn leaf_digest(&self, data: &[u8]) -> Digest {
        let mut msg = Vec::with_capacity(1 + data.len());
        msg.push(0x00); // domain separation: leaf
        msg.extend_from_slice(data);
        self.mac.full_tag(&msg)
    }

    fn combine(&self, left: &Digest, right: &Digest) -> Digest {
        let mut msg = Vec::with_capacity(1 + 2 * DIGEST_BYTES);
        msg.push(0x01); // domain separation: inner node
        msg.extend_from_slice(left);
        msg.extend_from_slice(right);
        self.mac.full_tag(&msg)
    }

    /// The current root digest — the only state the trusted side needs.
    pub fn root(&self) -> Digest {
        self.nodes[0]
    }

    /// Records new contents for `leaf` and refreshes the path to the root.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn update(&mut self, leaf: u64, data: &[u8]) {
        assert!(leaf < self.num_leaves(), "leaf out of range");
        let mut idx = self.first_leaf() + leaf as usize;
        self.nodes[idx] = self.leaf_digest(data);
        while idx > 0 {
            idx = (idx - 1) / 2;
            self.nodes[idx] = self.combine(&self.nodes[2 * idx + 1], &self.nodes[2 * idx + 2]);
        }
    }

    /// Whether `data` is the current content of `leaf`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn verify(&self, leaf: u64, data: &[u8]) -> bool {
        assert!(leaf < self.num_leaves(), "leaf out of range");
        self.nodes[self.first_leaf() + leaf as usize] == self.leaf_digest(data)
    }

    /// Produces the sibling path for `leaf`, for verification against a
    /// remembered root without the full tree.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn prove(&self, leaf: u64) -> MerklePath {
        assert!(leaf < self.num_leaves(), "leaf out of range");
        let mut idx = self.first_leaf() + leaf as usize;
        let mut siblings = Vec::with_capacity(self.depth as usize);
        while idx > 0 {
            let sibling = if idx % 2 == 1 { idx + 1 } else { idx - 1 };
            siblings.push(self.nodes[sibling]);
            idx = (idx - 1) / 2;
        }
        MerklePath { leaf, siblings }
    }

    /// Verifies `data` for `path.leaf` against a trusted `root` using only
    /// the path — what the processor-side check does without holding the
    /// tree.
    pub fn verify_path(&self, root: &Digest, path: &MerklePath, data: &[u8]) -> bool {
        let mut digest = self.leaf_digest(data);
        let mut idx = self.first_leaf() + path.leaf as usize;
        for sibling in &path.siblings {
            digest = if idx % 2 == 1 {
                self.combine(&digest, sibling)
            } else {
                self.combine(sibling, &digest)
            };
            idx = (idx - 1) / 2;
        }
        digest == *root
    }
}

/// A sparse, lazily populated per-bucket authentication-tag store.
///
/// The dense [`MerkleTree`] is right for small metadata regions, but an
/// L=23 Path ORAM tree has 2^24 buckets — far too many to hash eagerly.
/// The Secure Delegator instead keeps one CMAC tag per *touched* bucket:
/// a bucket's tag is recorded on write-back and checked on every path
/// read, which is exactly the integrity guarantee the SD needs (the
/// position map and stash are on-chip and trusted; only DRAM contents can
/// be tampered with).
///
/// Tags are domain-separated from both Merkle node kinds and bound to the
/// bucket address, so a valid (payload, tag) pair for bucket A cannot be
/// replayed at bucket B.
///
/// # Examples
///
/// ```
/// use doram_crypto::integrity::BucketIntegrity;
/// let mut store = BucketIntegrity::new([7; 16]);
/// store.record(42, b"bucket payload");
/// assert!(store.verify(42, b"bucket payload"));
/// assert!(!store.verify(42, b"tampered payload"));
/// ```
#[derive(Debug, Clone)]
pub struct BucketIntegrity {
    mac: Cmac,
    tags: std::collections::HashMap<u64, Digest>,
}

impl BucketIntegrity {
    /// Creates an empty store keyed with `key`.
    pub fn new(key: [u8; 16]) -> BucketIntegrity {
        BucketIntegrity {
            mac: Cmac::new(key),
            tags: std::collections::HashMap::new(),
        }
    }

    /// The address-bound tag for a bucket payload.
    fn tag(&self, addr: u64, payload: &[u8]) -> Digest {
        let mut msg = Vec::with_capacity(9 + payload.len());
        msg.push(0x02); // domain separation: bucket tag
        msg.extend_from_slice(&addr.to_le_bytes());
        msg.extend_from_slice(payload);
        self.mac.full_tag(&msg)
    }

    /// Records the authentic contents of bucket `addr` (called on every
    /// ORAM write-back).
    pub fn record(&mut self, addr: u64, payload: &[u8]) {
        let tag = self.tag(addr, payload);
        self.tags.insert(addr, tag);
    }

    /// Whether `payload` matches the recorded tag for `addr`. A bucket
    /// that was never recorded fails — reads of untracked buckets should
    /// use [`BucketIntegrity::verify_or_adopt`].
    pub fn verify(&self, addr: u64, payload: &[u8]) -> bool {
        self.tags
            .get(&addr)
            .is_some_and(|t| *t == self.tag(addr, payload))
    }

    /// Verifies `payload` against the recorded tag, adopting it as
    /// authentic if this is the first time `addr` is seen. Models the
    /// initialization handshake: the first fetch of an untouched bucket
    /// (all-dummy contents, written during tree setup) defines its tag.
    pub fn verify_or_adopt(&mut self, addr: u64, payload: &[u8]) -> bool {
        let tag = self.tag(addr, payload);
        *self.tags.entry(addr).or_insert(tag) == tag
    }

    /// Whether `addr` has a recorded tag.
    pub fn is_tracked(&self, addr: u64) -> bool {
        self.tags.contains_key(&addr)
    }

    /// Number of buckets currently tracked.
    pub fn tracked(&self) -> usize {
        self.tags.len()
    }

    /// All recorded `(addr, tag)` pairs sorted by address, for
    /// checkpointing. The key is configuration and is not exported.
    pub fn export_tags(&self) -> Vec<(u64, [u8; DIGEST_BYTES])> {
        let mut out: Vec<(u64, Digest)> = self.tags.iter().map(|(&a, &t)| (a, t)).collect();
        out.sort_unstable_by_key(|&(a, _)| a);
        out
    }

    /// Replaces the recorded tags with `tags` (a checkpoint restore). The
    /// store must have been built with the same key the tags were recorded
    /// under, or subsequent verifies will fail.
    pub fn import_tags(&mut self, tags: impl IntoIterator<Item = (u64, [u8; DIGEST_BYTES])>) {
        self.tags = tags.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_tree_verifies_empty_leaves() {
        let tree = MerkleTree::new(3, [1; 16]);
        assert_eq!(tree.num_leaves(), 8);
        for leaf in 0..8 {
            assert!(tree.verify(leaf, b""));
            assert!(!tree.verify(leaf, b"x"));
        }
    }

    #[test]
    fn update_changes_root_and_verifies() {
        let mut tree = MerkleTree::new(4, [2; 16]);
        let r0 = tree.root();
        tree.update(5, b"block-5-v1");
        let r1 = tree.root();
        assert_ne!(r0, r1, "root must move on update");
        assert!(tree.verify(5, b"block-5-v1"));
        tree.update(5, b"block-5-v2");
        assert!(!tree.verify(5, b"block-5-v1"), "stale content rejected");
        assert!(tree.verify(5, b"block-5-v2"));
    }

    #[test]
    fn replay_of_old_root_state_is_detected() {
        // The replay scenario of §III-B: attacker re-supplies an old
        // (authentic-looking) block. The remembered root exposes it.
        let mut tree = MerkleTree::new(3, [3; 16]);
        tree.update(2, b"v1");
        let old_proof = tree.prove(2);
        let old_root = tree.root();
        assert!(tree.verify_path(&old_root, &old_proof, b"v1"));
        // Memory moves on...
        tree.update(2, b"v2");
        let new_root = tree.root();
        // ...the replayed old block fails against the current root.
        assert!(!tree.verify_path(&new_root, &old_proof, b"v1"));
        assert!(tree.verify_path(&new_root, &tree.prove(2), b"v2"));
    }

    #[test]
    fn paths_verify_against_root_for_every_leaf() {
        let mut tree = MerkleTree::new(4, [4; 16]);
        for leaf in 0..16u64 {
            tree.update(leaf, format!("data-{leaf}").as_bytes());
        }
        let root = tree.root();
        for leaf in 0..16u64 {
            let path = tree.prove(leaf);
            assert_eq!(path.siblings.len(), 4);
            assert!(tree.verify_path(&root, &path, format!("data-{leaf}").as_bytes()));
            assert!(!tree.verify_path(&root, &path, b"forged"));
        }
    }

    #[test]
    fn sibling_updates_do_not_break_other_proofs() {
        let mut tree = MerkleTree::new(3, [5; 16]);
        tree.update(0, b"a");
        tree.update(1, b"b");
        let root = tree.root();
        assert!(tree.verify_path(&root, &tree.prove(0), b"a"));
        assert!(tree.verify_path(&root, &tree.prove(1), b"b"));
    }

    #[test]
    fn different_keys_produce_different_roots() {
        let a = MerkleTree::new(3, [6; 16]);
        let b = MerkleTree::new(3, [7; 16]);
        assert_ne!(a.root(), b.root());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_leaf_panics() {
        MerkleTree::new(2, [0; 16]).prove(4);
    }

    #[test]
    fn bucket_store_detects_tampering() {
        let mut store = BucketIntegrity::new([8; 16]);
        store.record(5, b"authentic");
        assert!(store.verify(5, b"authentic"));
        assert!(!store.verify(5, b"authentiC"), "bit flip detected");
        assert!(!store.verify(6, b"authentic"), "untracked bucket fails");
    }

    #[test]
    fn bucket_store_rejects_replay_and_relocation() {
        let mut store = BucketIntegrity::new([9; 16]);
        store.record(1, b"v1");
        store.record(2, b"other");
        store.record(1, b"v2");
        assert!(!store.verify(1, b"v1"), "stale contents are replay");
        assert!(store.verify(1, b"v2"));
        // A valid payload for bucket 2 cannot be replayed at bucket 1.
        assert!(!store.verify(1, b"other"));
    }

    #[test]
    fn adopt_on_first_sight_then_enforce() {
        let mut store = BucketIntegrity::new([10; 16]);
        assert!(store.verify_or_adopt(7, b"initial dummy"), "first sight adopts");
        assert!(store.is_tracked(7));
        assert!(store.verify_or_adopt(7, b"initial dummy"));
        assert!(!store.verify_or_adopt(7, b"forged"), "later tampering fails");
        assert_eq!(store.tracked(), 1);
    }

    #[test]
    fn bucket_store_is_sparse() {
        let mut store = BucketIntegrity::new([11; 16]);
        // Addresses far beyond any dense tree's reach are fine.
        store.record(1 << 60, b"far");
        assert!(store.verify(1 << 60, b"far"));
        assert_eq!(store.tracked(), 1);
    }
}

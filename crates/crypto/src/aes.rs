//! AES-128 block cipher (FIPS-197), implemented from scratch.
//!
//! The S-box is derived at construction time from its mathematical
//! definition (multiplicative inverse in GF(2⁸) followed by the affine
//! transform) rather than hand-typed, and the whole cipher is validated
//! against the FIPS-197 appendix vectors in the tests.

/// Number of rounds for a 128-bit key.
const ROUNDS: usize = 10;

/// Multiplication by x in GF(2^8) modulo the AES polynomial x⁸+x⁴+x³+x+1.
fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1B)
}

/// Full multiplication in GF(2^8).
fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut out = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            out ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    out
}

/// Multiplicative inverse in GF(2^8); 0 maps to 0.
/// Uses Fermat: a^(2^8 - 2) = a^254.
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 by square-and-multiply.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u16;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

/// Computes the AES S-box and its inverse from first principles.
fn build_sboxes() -> ([u8; 256], [u8; 256]) {
    let mut sbox = [0u8; 256];
    let mut inv = [0u8; 256];
    for x in 0..256u16 {
        let b = gf_inv(x as u8);
        // Affine transform: b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63
        let s = b
            ^ b.rotate_left(1)
            ^ b.rotate_left(2)
            ^ b.rotate_left(3)
            ^ b.rotate_left(4)
            ^ 0x63;
        sbox[x as usize] = s;
        inv[s as usize] = x as u8;
    }
    (sbox, inv)
}

/// An expanded AES-128 key schedule ready for encryption and decryption.
///
/// # Examples
///
/// ```
/// use doram_crypto::aes::Aes128;
/// let aes = Aes128::new([0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_eq!(aes.decrypt_block(ct), [0u8; 16]);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
    sbox: [u8; 256],
    inv_sbox: [u8; 256],
}

impl std::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands `key` into the full round-key schedule.
    pub fn new(key: [u8; 16]) -> Aes128 {
        let (sbox, inv_sbox) = build_sboxes();
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in w.iter_mut().take(4).enumerate() {
            word.copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for b in temp.iter_mut() {
                    *b = sbox[*b as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 {
            round_keys,
            sbox,
            inv_sbox,
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= k;
        }
    }

    fn sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.sbox[*b as usize];
        }
    }

    fn inv_sub_bytes(&self, state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = self.inv_sbox[*b as usize];
        }
    }

    /// State is column-major: state[4*c + r] = row r, column c.
    fn shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[4 * c + r] = row[(c + r) % 4];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for r in 1..4 {
            let row = [state[r], state[4 + r], state[8 + r], state[12 + r]];
            for c in 0..4 {
                state[4 * c + r] = row[(c + 4 - r) % 4];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let a = [col[0], col[1], col[2], col[3]];
            col[0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3];
            col[1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3];
            col[2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3);
            col[3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let a = [col[0], col[1], col[2], col[3]];
            col[0] = gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9);
            col[1] = gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13);
            col[2] = gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11);
            col[3] = gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut state = block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..ROUNDS {
            self.sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        self.sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut state = block;
        Self::add_round_key(&mut state, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            Self::inv_shift_rows(&mut state);
            self.inv_sub_bytes(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        self.inv_sub_bytes(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            out[i] = u8::from_str_radix(std::str::from_utf8(chunk).unwrap(), 16).unwrap();
        }
        out
    }

    #[test]
    fn sbox_known_entries() {
        let (sbox, inv) = build_sboxes();
        assert_eq!(sbox[0x00], 0x63);
        assert_eq!(sbox[0x01], 0x7C);
        assert_eq!(sbox[0x53], 0xED);
        assert_eq!(inv[0x63], 0x00);
        // The S-box is a permutation.
        let mut seen = [false; 256];
        for &s in sbox.iter() {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn gf_arithmetic() {
        // FIPS-197 §4.2: {57} · {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xC1);
        assert_eq!(gf_mul(0x57, 0x13), 0xFE);
        for a in 1..=255u8 {
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inverse failed for {a:#x}");
        }
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn fips197_vector() {
        // FIPS-197 Appendix C.1.
        let aes = Aes128::new(hex16("000102030405060708090a0b0c0d0e0f"));
        let pt = hex16("00112233445566778899aabbccddeeff");
        let ct = aes.encrypt_block(pt);
        assert_eq!(ct, hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B.
        let aes = Aes128::new(hex16("2b7e151628aed2a6abf7158809cf4f3c"));
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        assert_eq!(aes.encrypt_block(pt), hex16("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn round_trip_random_blocks() {
        let aes = Aes128::new([7u8; 16]);
        let mut block = [0u8; 16];
        for trial in 0..64u8 {
            for (i, b) in block.iter_mut().enumerate() {
                *b = trial.wrapping_mul(31).wrapping_add(i as u8 * 17);
            }
            assert_eq!(aes.decrypt_block(aes.encrypt_block(block)), block);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new([0u8; 16]);
        let b = Aes128::new([1u8; 16]);
        assert_ne!(a.encrypt_block([0u8; 16]), b.encrypt_block([0u8; 16]));
    }

    #[test]
    fn debug_hides_key() {
        let s = format!("{:?}", Aes128::new([0x42; 16]));
        assert!(!s.contains("42"));
    }
}

#![warn(missing_docs)]

//! Cryptographic engine of the D-ORAM secure delegator.
//!
//! The paper's secure delegator (SD) and the on-chip secure engine exchange
//! fixed-size 72 B packets protected by one-time-pad (OTP) encryption,
//! authentication, and integrity/replay checks (§III-B). This crate provides
//! a from-scratch implementation of that machinery:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), the primitive the paper's
//!   Equation (1) uses to pre-generate OTPs;
//! * [`otp`] — the OTP stream `AES(K, N0, SeqNum)` and pad application;
//! * [`mac`] — AES-CMAC (RFC 4493) for packet authentication;
//! * [`integrity`] — Merkle-tree memory integrity (replay defense);
//! * [`session`] — the paired CPU/SD endpoints: key negotiation, sequence
//!   numbers, sealing and opening of packets, replay rejection.
//!
//! The timing cost of these operations inside the simulator is a latency
//! parameter (the crypto here is *functional*, used to demonstrate the
//! protocol end-to-end and to catch protocol bugs in tests).
//!
//! # Examples
//!
//! ```
//! use doram_crypto::session::SessionPair;
//!
//! let (mut cpu, mut sd) = SessionPair::negotiate(0xD00D).into_endpoints();
//! let sealed = cpu.seal(&[0xAB; 72]);
//! let opened = sd.open(&sealed).expect("authentic packet");
//! assert_eq!(opened, [0xAB; 72]);
//! ```

pub mod aes;
pub mod integrity;
pub mod mac;
pub mod otp;
pub mod session;

pub use aes::Aes128;
pub use integrity::{BucketIntegrity, MerklePath, MerkleTree, DIGEST_BYTES};
pub use mac::Cmac;
pub use otp::OtpStream;
pub use session::{SealedPacket, SecureEndpoint, SessionError, SessionPair};

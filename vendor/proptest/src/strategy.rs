//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps RNG draws to values. Unlike real
//! proptest there is no shrink tree; failures report the generated input
//! directly.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A source of generated values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives, built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Bias toward the edges now and then: boundary values find
                // more bugs than the uniform interior.
                if rng.below(16) == 0 {
                    if rng.below(2) == 0 { self.start } else { self.end - 1 }
                } else {
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0 => 0);
tuple_strategy!(S0 => 0, S1 => 1);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);

/// Result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.generate(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Result of [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// String-literal "regex" strategies. Real proptest compiles the pattern;
/// this stand-in only honors `.{a,b}`-style length bounds (the one shape the
/// suite uses, for garbage-input totality tests) and otherwise produces
/// arbitrary short printable strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_len_bounds(self).unwrap_or((0, 64));
        let len = if hi > lo {
            lo + rng.below((hi - lo + 1) as u64) as usize
        } else {
            lo
        };
        // A mix of printable ASCII, whitespace, and multi-byte chars, so
        // "never panics on garbage" properties get real garbage.
        const ALPHABET: &[char] = &[
            'a', 'Z', '0', '9', ' ', '\t', '\n', 'x', 'R', 'W', '#', '-', '+', '_', '.', ':',
            ',', '/', '\\', '"', '\'', '{', '}', 'é', 'λ', '🦀', '\u{0}', '\u{7f}',
        ];
        (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
            .collect()
    }
}

/// Extracts `(a, b)` from a `.{a,b}` pattern, if that is the whole pattern.
fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

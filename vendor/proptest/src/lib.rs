//! A minimal, offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors this small re-implementation of the slice of proptest's API that
//! the test suite actually uses: the [`Strategy`] trait with `prop_map`,
//! integer-range / tuple / collection / option / union strategies, the
//! `proptest!`, `prop_assert!`, `prop_assert_eq!` and `prop_oneof!` macros,
//! and a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated input
//!   (which is deterministic, so it reproduces on re-run) but does not search
//!   for a minimal counterexample.
//! * **Deterministic seeding.** Cases are derived from a fixed per-test seed,
//!   so CI runs are exactly reproducible.
//! * **String "regex" strategies** only support the garbage-generation
//!   patterns the suite uses (`.{a,b}`-style length bounds); anything else
//!   degrades to arbitrary printable strings.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// A strategy producing `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Arbitrary-value support (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + std::fmt::Debug {
        fn generate(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn generate(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate(rng)
        }
    }

    /// The canonical strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-import surface test files use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror of proptest's `prop` module re-exports.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking) so the runner can report the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left
                ),
            ));
        }
    }};
}

/// Picks uniformly among the listed strategies (all must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..10, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(($($strat,)+), |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

//! Deterministic test runner and its RNG.

use crate::strategy::Strategy;
use std::fmt;

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; this stand-in trades a little
        // coverage for suite latency.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Fails the current case with `reason`. Accepts anything printable so
    /// callers can pass `String`s or typed errors alike.
    pub fn fail(reason: impl fmt::Display) -> TestCaseError {
        TestCaseError {
            message: reason.to_string(),
        }
    }

    /// Alias of [`TestCaseError::fail`], mirroring proptest's `reject`.
    pub fn reject(reason: impl fmt::Display) -> TestCaseError {
        TestCaseError::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-based RNG: tiny, fast, and deterministic per (test, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn seed_from(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; panics on `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift reduction; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Drives one property: generates inputs, runs the body, panics on the first
/// failing case with the case index and generated value.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner whose RNG stream is derived from the property name,
    /// so every property sees an independent but reproducible sequence.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        TestRunner { config, seed }
    }

    /// Runs `body` against `cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first case whose body
    /// returns an error, reporting the deterministic case index and input.
    pub fn run<S, F>(&mut self, strategy: S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let mut rng = TestRng::seed_from(
                self.seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407),
            );
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            if let Err(e) = body(value) {
                panic!(
                    "property failed at case {case}/{cases}: {e}\n  input: {shown}",
                    cases = self.config.cases,
                );
            }
        }
    }
}

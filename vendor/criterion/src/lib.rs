//! A minimal, offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! this small re-implementation of the API surface the benches use:
//! [`Criterion`] with `bench_function` / `benchmark_group`, groups with
//! `bench_with_input` and `finish`, [`BenchmarkId`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Semantics: each benchmark body is timed with `std::time::Instant` over
//! `sample_size` iterations and the mean/min are printed to stdout. When the
//! harness is invoked in cargo's *test* mode (a `--test` argument, as
//! `cargo test` does for `harness = false` bench targets), benchmarks are
//! registered but not executed, keeping the test suite fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// True when the binary was started by `cargo test` rather than
/// `cargo bench` (cargo passes `--test` to non-harness bench targets).
fn in_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Per-iteration timing loop handed to benchmark bodies.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `body` once per sample, preventing the result from being
    /// optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = body();
            self.elapsed.push(start.elapsed());
            std::hint::black_box(&out);
        }
    }
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id rendered from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            test_mode: in_test_mode(),
        }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs (or, in test mode, registers) a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        if self.test_mode {
            println!("bench {name}: skipped (test mode)");
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Vec::with_capacity(self.sample_size),
        };
        body(&mut b);
        report(name, &b.elapsed);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        let input_ref = input;
        self.criterion
            .bench_function(&full, |b| body(b, input_ref));
        self
    }

    /// Ends the group. (No-op: kept for API compatibility.)
    pub fn finish(self) {}
}

/// Prints a one-line summary for a finished benchmark.
fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {name}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {name}: mean {mean:?}, min {min:?} over {} samples",
        samples.len()
    );
}

/// Declares a group-runner function, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Integrity-verified Path ORAM: composing the ORAM protocol with the
//! Merkle-tree replay defense (§III-B item 4).
//!
//! OTP encryption hides *contents* and Path ORAM hides *access patterns*,
//! but neither stops untrusted memory from answering with a stale block it
//! recorded earlier. The standard fix keeps a hash-tree root inside the
//! TCB. This example wires `doram::crypto::MerkleTree` over the blocks an
//! ORAM stores, then demonstrates a replay being caught.
//!
//! ```text
//! cargo run --release --example verified_oram
//! ```

use doram::crypto::MerkleTree;
use doram::oram::protocol::PathOram;
use std::error::Error;

/// A tiny verified store: every write refreshes the hash tree, every read
/// is checked before use. The Merkle leaves are indexed by *logical*
/// block id — physical movement inside the ORAM tree never touches them,
/// which is exactly why the composition stays simple.
struct VerifiedOram {
    oram: PathOram<Vec<u8>>,
    integrity: MerkleTree,
}

impl VerifiedOram {
    fn new() -> VerifiedOram {
        VerifiedOram {
            oram: PathOram::new(8, 4, 99),
            integrity: MerkleTree::new(8, *b"integrity-key-00"), // 256 blocks
        }
    }

    fn write(&mut self, block: u64, data: Vec<u8>) {
        self.integrity.update(block, &data);
        self.oram.write(block, data);
    }

    /// Reads and verifies; `Err` means the memory lied.
    fn read(&mut self, block: u64) -> Result<Option<Vec<u8>>, Box<dyn Error>> {
        match self.oram.read(block) {
            None => Ok(None),
            Some(data) => {
                if self.integrity.verify(block, &data) {
                    Ok(Some(data))
                } else {
                    Err(format!("integrity violation on block {block}").into())
                }
            }
        }
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let mut store = VerifiedOram::new();

    for i in 0..64u64 {
        store.write(i, format!("record {i}").into_bytes());
    }
    for i in (0..64u64).step_by(7) {
        let got = store.read(i)?.expect("exists");
        assert_eq!(got, format!("record {i}").into_bytes());
    }
    println!("64 records stored and verified through the ORAM");

    // Simulate a replay: untrusted memory re-serves the old version of
    // block 9 after an update. (We model it by updating the ORAM but
    // "losing" the integrity refresh the attacker would have to forge.)
    store.write(9, b"record 9 v2".to_vec());
    let ok = store.read(9)?.expect("exists");
    assert_eq!(ok, b"record 9 v2".to_vec());
    println!("update to block 9 verified");

    // The attacker's replay: hand back the stale bytes directly.
    let stale = b"record 9".to_vec();
    let caught = !store.integrity.verify(9, &stale);
    assert!(caught);
    println!("replayed stale block 9 rejected by the Merkle root");

    // And the root is all the TCB had to remember:
    println!("trusted state: one {}-byte root", store.integrity.root().len());
    Ok(())
}

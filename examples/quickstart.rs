//! Quickstart: simulate the D-ORAM co-run and print the headline numbers.
//!
//! Runs four configurations of the paper's workload shape (1 S-App + 7
//! NS-Apps, all the same benchmark) and reports how much execution time
//! the NS-Apps lose to the S-App's protection under each scheme.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [accesses]
//! ```

use doram::core::{Scheme, Simulation, SystemConfig};
use doram::trace::Benchmark;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .and_then(|name| Benchmark::ALL.into_iter().find(|b| b.spec().name == *name))
        .unwrap_or(Benchmark::Mummer);
    let accesses: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2_000);

    println!("benchmark: {bench} (MPKI {}), {accesses} accesses/NS-App\n", bench.spec().mpki);

    let run = |scheme: Scheme| -> Result<f64, Box<dyn Error>> {
        let cfg = SystemConfig::builder(bench)
            .scheme(scheme)
            .ns_accesses(accesses)
            .build()?;
        let report = Simulation::new(cfg)?.run()?;
        Ok(report.ns_exec_mean())
    };

    let solo = run(Scheme::SoloNs)?;
    println!("{:>12}: {solo:>12.0} CPU cycles (the 1NS reference)", "solo");
    for scheme in [
        Scheme::Ns7on4,
        Scheme::Baseline,
        Scheme::DOram { k: 0, c: 7 },
        Scheme::DOram { k: 1, c: 4 },
    ] {
        let t = run(scheme)?;
        println!(
            "{:>12}: {t:>12.0} CPU cycles  ({:.2}x solo)",
            scheme.label(),
            t / solo
        );
    }
    println!(
        "\nThe D-ORAM rows should sit between 7NS-4ch (no S-App at all) and\n\
         Baseline (Path ORAM run from the CPU across all four channels)."
    );
    Ok(())
}

//! The recursion trade-off: trusted state vs. bandwidth.
//!
//! D-ORAM's secure delegator stores the whole position map in its own
//! memory — simple, but the map for a 4 GB tree is tens of megabytes.
//! Recursive ORAMs shrink the trusted state to a constant-size top table
//! at the price of extra path accesses per operation. This example
//! measures that trade-off with the `doram::oram::recursive` stack.
//!
//! ```text
//! cargo run --release --example recursion_tradeoff
//! ```

use doram::oram::recursive::RecursiveOram;
use doram::oram::tree::TreeGeometry;
use doram::sim::rng::Xoshiro256;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let l_max = 14u32; // 16 K leaves of data ORAM
    let flat_map_bytes = TreeGeometry::new(l_max, 4).num_leaves() * 8;
    println!(
        "data ORAM: 2^{l_max} leaves; a flat position map costs {} KiB of trusted state\n",
        flat_map_bytes / 1024
    );
    println!(
        "{:>12} {:>8} {:>14} {:>20}",
        "top entries", "depth", "trusted bytes", "map accesses / op"
    );

    for top in [16u64, 128, 1024, 8192] {
        let mut oram: RecursiveOram<u64> = RecursiveOram::new(l_max, top, 9);
        let mut rng = Xoshiro256::seed_from(1);
        let ops = 400u64;
        for i in 0..ops {
            oram.write(rng.gen_below(4_000), i);
        }
        let pm = oram.posmap();
        println!(
            "{:>12} {:>8} {:>14} {:>20.1}",
            top,
            pm.depth(),
            pm.top_entries() * 8,
            pm.map_accesses() as f64 / ops as f64,
        );
        oram.check_invariants().map_err(std::io::Error::other)?;
    }

    println!(
        "\nEvery map access is itself a full (smaller) path read + write, so the\n\
         per-operation cost grows with depth while the trusted footprint shrinks\n\
         — exactly why D-ORAM's 1 mm² delegator, which can afford the flat map\n\
         next to the DIMMs, keeps the protocol single-level."
    );
    Ok(())
}

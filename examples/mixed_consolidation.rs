//! Server consolidation with a heterogeneous tenant mix.
//!
//! The paper evaluates homogeneous co-runs (all eight apps the same
//! program); a real consolidated server mixes tenants. This example runs
//! one protected S-App next to seven *different* NS-Apps and shows how
//! D-ORAM's relief is distributed: memory-hungry tenants gain the most,
//! light tenants mostly pay the BOB link.
//!
//! ```text
//! cargo run --release --example mixed_consolidation
//! ```

use doram::core::{Scheme, Simulation, SystemConfig};
use doram::trace::Benchmark;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // The S-App is a (protected) genome aligner; the tenants range from
    // streaming analytics to low-intensity services.
    let sapp = Benchmark::Mummer;
    let tenants = vec![
        Benchmark::Face,   // heavy streaming
        Benchmark::Leslie, // heavy streaming
        Benchmark::Libq,   // medium streaming
        Benchmark::Comm2,  // medium random
        Benchmark::Swapt,  // medium mixed
        Benchmark::Comm4,  // light random
        Benchmark::Black,  // light mixed
    ];

    let run = |scheme: Scheme| -> Result<Vec<u64>, Box<dyn Error>> {
        let cfg = SystemConfig::builder(sapp)
            .scheme(scheme)
            .ns_benchmarks(tenants.clone())
            .ns_accesses(1_500)
            .build()?;
        Ok(Simulation::new(cfg)?.run()?.ns_exec_cpu_cycles)
    };

    let baseline = run(Scheme::Baseline)?;
    let doram = run(Scheme::DOram { k: 0, c: 7 })?;

    println!("per-tenant execution time, D-ORAM normalized to Baseline:\n");
    println!("{:<8} {:>6} {:>12} {:>12} {:>8}", "tenant", "MPKI", "baseline", "d-oram", "ratio");
    for (i, b) in tenants.iter().enumerate() {
        println!(
            "{:<8} {:>6.1} {:>12} {:>12} {:>8.3}",
            b.spec().name,
            b.spec().mpki,
            baseline[i],
            doram[i],
            doram[i] as f64 / baseline[i] as f64
        );
    }
    let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
    println!(
        "\nmean: {:.3} (delegation helps the mix even though tenants disagree)",
        mean(&doram) / mean(&baseline)
    );
    Ok(())
}

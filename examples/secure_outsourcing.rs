//! The paper's motivating scenario, end to end and *functionally*: a
//! medical-records service outsourced to an untrusted cloud server.
//!
//! §II-B1 motivates ORAM with a medical application whose lookups leak the
//! patient's condition through the memory access pattern. This example
//! builds that pipeline with the real protocol pieces:
//!
//! 1. a toy disease database is stored **through Path ORAM**, so the
//!    server-visible access pattern is a fresh random path per lookup;
//! 2. the CPU↔delegator packets are sealed with the OTP + CMAC session of
//!    `doram-crypto` (what the secure engine and SD would run in hardware);
//! 3. the same lookups are replayed against a plain array to show the
//!    address trace an attacker would otherwise see.
//!
//! Run with `cargo run --release --example secure_outsourcing`.

use doram::crypto::session::SessionPair;
use doram::oram::protocol::PathOram;
use doram::oram::tree::TreeGeometry;
use std::error::Error;

/// A record stored per condition.
fn treatment_for(condition: &str) -> String {
    format!("standard treatment protocol for {condition}")
}

fn main() -> Result<(), Box<dyn Error>> {
    let conditions = [
        "hypertension",
        "diabetes",
        "influenza",
        "asthma",
        "migraine",
        "anemia",
        "arthritis",
        "insomnia",
    ];

    // --- 1. Load the database into a small Path ORAM. -------------------
    let mut oram: PathOram<String> = PathOram::new(10, 4, 2024);
    for (id, c) in conditions.iter().enumerate() {
        oram.write(id as u64, treatment_for(c));
    }
    println!(
        "database loaded: {} records in a {}-level Path ORAM tree ({} buckets)",
        conditions.len(),
        oram.geometry().levels(),
        TreeGeometry::new(10, 4).total_buckets(),
    );

    // --- 2. A patient's (sensitive) lookup sequence. --------------------
    let visits = [1u64, 1, 1, 4, 1, 1]; // mostly diabetes — the secret
    println!("\npatient lookups (condition ids): {visits:?}");

    // The CPU-side engine seals each request packet for the delegator.
    let (mut cpu, mut sd) = SessionPair::negotiate(0xC10D).into_endpoints();
    for &id in &visits {
        let mut packet = [0u8; 72];
        packet[..8].copy_from_slice(&id.to_be_bytes());
        let sealed = cpu.seal(&packet);
        // The delegator opens the packet and serves it from the ORAM.
        let opened = sd.open(&sealed).expect("authentic request");
        let looked_up = u64::from_be_bytes(opened[..8].try_into()?);
        let record = oram.read(looked_up).expect("record exists");
        assert_eq!(record, treatment_for(conditions[looked_up as usize]));
    }
    println!("all lookups answered correctly through the ORAM");

    // --- 3. What the server sees. ---------------------------------------
    // Plain storage: the address trace *is* the secret.
    let plain_trace: Vec<u64> = visits.iter().map(|&id| 0x1000 + id * 64).collect();
    println!("\nplain-array address trace (leaks repetition): {plain_trace:x?}");

    // ORAM storage: each access touched one full random path. Show the
    // stash/occupancy stats instead — the point is that repeated lookups
    // of record 1 are not correlated on the bus.
    println!(
        "Path ORAM view: {} accesses, stash peak {} blocks — every access \
         read and rewrote one uniformly random tree path",
        oram.accesses(),
        oram.stash_peak(),
    );
    oram.check_invariants().map_err(std::io::Error::other)?;
    println!("protocol invariants verified");
    Ok(())
}

//! Capacity expansion: grow the protected dataset with D-ORAM+k.
//!
//! §III-C's problem: the secure channel's DIMMs bound the ORAM tree, and
//! Path ORAM's ~50% space efficiency halves what fits. D-ORAM+k relocates
//! the last k tree levels onto the normal channels — each increment of k
//! doubles the protected capacity at a small execution-time cost
//! (Figure 10) and rebalances space per Table I.
//!
//! ```text
//! cargo run --release --example capacity_expansion
//! ```

use doram::core::experiments::table1;
use doram::core::{Scheme, Simulation, SystemConfig};
use doram::oram::split::SplitConfig;
use doram::oram::tree::TreeGeometry;
use doram::trace::Benchmark;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let g = TreeGeometry::paper_default();
    println!(
        "base tree: {} levels, {:.1} GiB, protects {:.1} GiB of user data\n",
        g.levels(),
        g.tree_bytes() as f64 / (1 << 30) as f64,
        g.user_blocks() as f64 * 64.0 / (1 << 30) as f64,
    );

    // Space accounting (Table I).
    println!("{}", table1::render(&table1::run()));

    // Measured execution-time cost of each expansion step (Figure 10's
    // mechanism, on one benchmark at example scale).
    let bench = Benchmark::Fluid;
    let mut d0 = None;
    println!("measured NS-App cost of expansion ({bench}):");
    for k in 0..=3u32 {
        let cfg = SystemConfig::builder(bench)
            .scheme(Scheme::DOram { k, c: 7 })
            .ns_accesses(1_200)
            .build()?;
        let t = Simulation::new(cfg)?.run()?.ns_exec_mean();
        let base = *d0.get_or_insert(t);
        let capacity_gb = TreeGeometry::new(23 + k, 4).tree_bytes() as f64 / (1u64 << 30) as f64;
        println!(
            "  k={k}: tree {:>4.0} GiB, exec {:+.2}% vs plain D-ORAM",
            capacity_gb,
            (t / base - 1.0) * 100.0
        );
    }

    // The placement rule itself.
    let split = SplitConfig::new(2, 3);
    println!("\nblock placement of a split bucket (k=2, Z=4), per path id:");
    for path in 0..4u64 {
        let chans: Vec<usize> = (0..4).map(|s| split.channel_for_slot(path, s)).collect();
        println!("  path {path}: slots -> channels {chans:?}");
    }
    Ok(())
}

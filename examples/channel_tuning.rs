//! Channel tuning: use the profiling ratio of §III-D to pick the
//! secure-channel sharing level `c`, then verify the prediction.
//!
//! This is the D-ORAM/c workflow a cloud operator would run: profile a
//! short segment of the workload (`T25mix / T33`), decide whether the
//! secure channel is worth using, then deploy with the chosen `c`.
//!
//! ```text
//! cargo run --release --example channel_tuning [benchmark]
//! ```

use doram::core::profiling::{profile, ProfileScale};
use doram::core::{Scheme, Simulation, SystemConfig};
use doram::trace::Benchmark;
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let bench = std::env::args()
        .nth(1)
        .and_then(|name| Benchmark::ALL.into_iter().find(|b| b.spec().name == name))
        .unwrap_or(Benchmark::Black);

    // --- Profile a separate trace segment (as Figure 12 does). ----------
    let p = profile(
        bench,
        ProfileScale {
            accesses: 1_000,
            seed: 1,
            stream: 7,
        },
    )?;
    println!(
        "{bench}: solo latency {:.1} cycles | T33 {:.2} T25 {:.2} T25mix {:.2}",
        p.solo_latency, p.t33, p.t25, p.t25mix
    );
    println!(
        "ratio r = T25mix/T33 = {:.3} → {}",
        p.ratio(),
        if p.prefers_small_c() {
            "secure channel is congested: keep NS-Apps off it (small c)"
        } else {
            "secure channel has headroom: use all four channels (large c)"
        }
    );
    let recommended_c: u32 = if p.prefers_small_c() { 1 } else { 6 };

    // --- Deploy and compare against the two extremes. --------------------
    let measure = |c: u32| -> Result<f64, Box<dyn Error>> {
        let cfg = SystemConfig::builder(bench)
            .scheme(Scheme::DOram { k: 0, c })
            .ns_accesses(1_500)
            .build()?;
        Ok(Simulation::new(cfg)?.run()?.ns_exec_mean())
    };
    let at_reco = measure(recommended_c)?;
    let at_zero = measure(0)?;
    let at_full = measure(7)?;
    println!("\nmean NS-App execution time (CPU cycles):");
    println!("  c=0            : {at_zero:.0}");
    println!("  c={recommended_c} (profiled) : {at_reco:.0}");
    println!("  c=7            : {at_full:.0}");
    let best = at_zero.min(at_full);
    println!(
        "\nprofile-guided choice is within {:.1}% of the better extreme",
        (at_reco / best - 1.0) * 100.0
    );
    Ok(())
}

//! Stash-occupancy characterization of the Path ORAM protocol.
//!
//! Path ORAM's security argument needs the stash to stay small with
//! overwhelming probability (Stefanov et al. prove an exponential tail
//! for Z ≥ 4, and §III-C's ~50% space-efficiency rule exists to keep
//! overflow negligible). This example measures the stash empirically:
//! occupancy distribution under sustained random writes, at several
//! utilization levels, plus the effect of bucket size Z.
//!
//! ```text
//! cargo run --release --example stash_behavior
//! ```

use doram::oram::protocol::PathOram;
use doram::sim::rng::Xoshiro256;
use doram::sim::stats::Histogram;
use std::error::Error;

fn characterize(l_max: u32, z: u32, utilization: f64, accesses: u64) -> (f64, usize, Histogram) {
    let mut oram: PathOram<u64> = PathOram::new(l_max, z, 42);
    let universe = ((oram.geometry().total_blocks() as f64) * utilization) as u64;
    let mut rng = Xoshiro256::seed_from(7);
    let mut hist = Histogram::new(1, 64);
    let mut sum = 0u64;
    for i in 0..accesses {
        oram.write(rng.gen_below(universe.max(1)), i);
        hist.record(oram.stash_len() as u64);
        sum += oram.stash_len() as u64;
    }
    (sum as f64 / accesses as f64, oram.stash_peak(), hist)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("stash occupancy after each access (L=10 tree, 20k random writes)\n");
    println!(
        "{:>4} {:>12} {:>10} {:>8} {:>8} {:>8}",
        "Z", "utilization", "mean", "p99", "peak", "status"
    );
    for &(z, util) in &[
        (4u32, 0.25f64),
        (4, 0.50), // the paper's operating point
        (4, 0.75),
        (4, 0.95),
        (2, 0.50),
        (6, 0.50),
    ] {
        let (mean, peak, hist) = characterize(10, z, util, 20_000);
        let p99 = hist.quantile(0.99).unwrap_or(0);
        // Judge by the p99 tail: the peak includes a cold-start transient
        // while the first writes populate an empty tree.
        let status = if p99 < 20 { "bounded" } else { "heavy tail" };
        println!("{z:>4} {:>11.0}% {mean:>10.2} {p99:>8} {peak:>8} {status:>8}", util * 100.0);
    }
    println!(
        "\nAt the paper's Z = 4 / 50%-utilization point the stash stays in the\n\
         single digits — which is why a ~1 mm² on-BOB secure delegator (§III-E)\n\
         can hold it entirely in SRAM. Pushing utilization toward 100% (or\n\
         shrinking Z) makes the tail blow up: that is the overflow failure the\n\
         50% space-efficiency rule avoids."
    );
    Ok(())
}
